//! A perceptron predictor (extension component).
//!
//! Section III-G of the paper notes that "other predictor types, like
//! perceptron [24] …, may be implemented similarly" against the COBRA
//! interface; this module does so, following Jiménez & Lin's HPCA 2001
//! design: a table of signed weight vectors dotted with the global history.
//!
//! As the paper anticipates for complex sub-components (Section III-C), the
//! perceptron provides a *single* prediction for the whole fetch packet
//! rather than per-slot predictions. Unlike the counter tables it cannot
//! fold its whole update into metadata (the weight vector is too wide), so
//! it re-reads weights at update time — the physical cost shows up as an
//! extra read port in its storage declaration.

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{PortKind, SnapError, SramModel, StateReader, StateWriter};

/// Configuration for a [`Perceptron`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronConfig {
    /// Number of perceptrons (power of two).
    pub entries: u64,
    /// History length (weights per perceptron, excluding bias).
    pub hist_len: u32,
    /// Weight width in bits (signed).
    pub weight_bits: u8,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl PerceptronConfig {
    /// A 256-entry, 24-bit-history perceptron.
    pub fn default_size(width: u8) -> Self {
        Self {
            entries: 256,
            hist_len: 24,
            weight_bits: 8,
            latency: 3,
            width,
        }
    }

    /// Jiménez's training threshold θ = ⌊1.93·h + 14⌋.
    pub fn theta(&self) -> i32 {
        (1.93 * self.hist_len as f64 + 14.0) as i32
    }
}

/// A global-history perceptron predictor.
#[derive(Debug)]
pub struct Perceptron {
    cfg: PerceptronConfig,
    weights: SramModel<Vec<i16>>,
}

mod meta_layout {
    pub const SUM: u32 = 0; // 18 bits: sum + 2^17 (biased)
    pub const TAKEN: u32 = 18; // 1 bit
}

impl Perceptron {
    /// Builds a perceptron table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, `hist_len` is zero, or
    /// the latency is below 2 (history user).
    pub fn new(cfg: PerceptronConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(cfg.hist_len > 0, "history length must be nonzero");
        assert!(cfg.latency >= 2, "history users need latency >= 2");
        let row = vec![0i16; cfg.hist_len as usize + 1];
        Self {
            weights: SramModel::new(
                cfg.entries,
                (cfg.hist_len as u64 + 1) * cfg.weight_bits as u64,
                PortKind::TwoReadOneWrite,
                row,
            ),
            cfg,
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &PerceptronConfig {
        &self.cfg
    }

    fn index(&self, pc: u64) -> u64 {
        bits::mix64(pc >> 1) & bits::mask(bits::clog2(self.cfg.entries))
    }

    fn weight_max(&self) -> i16 {
        ((1u32 << (self.cfg.weight_bits - 1)) - 1) as i16
    }

    fn dot(&self, row: &[i16], ghist: &cobra_sim::HistoryRegister) -> i32 {
        let mut sum = row[0] as i32; // bias weight
        for i in 0..self.cfg.hist_len.min(ghist.width()) {
            let x = if ghist.bit(i) { 1 } else { -1 };
            sum += row[i as usize + 1] as i32 * x;
        }
        sum
    }
}

impl Component for Perceptron {
    fn kind(&self) -> &'static str {
        "perceptron"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        19
    }

    fn field_profile(&self) -> FieldProfile {
        // The dot product always yields a direction (the pipeline always
        // supplies histories to a latency ≥ 2 component).
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::TAKEN,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_len
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        // History enters only the dot product, never the row index.
        vec![IndexDescriptor {
            table: "perceptron-weights".into(),
            sets: self.cfg.entries,
            pc_bits: bits::clog2(self.cfg.entries),
            ghist_bits: 0,
            lhist_bits: 0,
            path_bits: 0,
        }]
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_sram("perceptron-weights", self.weights.spec());
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        let (reads, writes) = self.weights.access_counts();
        vec![crate::types::AccessReport {
            name: "table".into(),
            spec: self.weights.spec(),
            reads,
            writes,
            rows_touched: self.weights.rows_touched(),
        }]
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        self.weights.begin_cycle(q.cycle);
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        if let Some(h) = &q.hist {
            let idx = self.index(q.pc);
            let row = self.weights.read(idx).clone();
            let sum = self.dot(&row, h.ghist);
            let taken = sum >= 0;
            for i in 0..q.width as usize {
                pred.slot_mut(i).taken = Some(taken);
            }
            let biased = (sum + (1 << 17)).clamp(0, (1 << 18) - 1) as u64;
            meta |= biased << meta_layout::SUM;
            meta |= (taken as u64) << meta_layout::TAKEN;
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        use meta_layout::*;
        let sum = bits::field(ev.meta.0, SUM, 18) as i32 - (1 << 17);
        let predicted = bits::field(ev.meta.0, TAKEN, 1) == 1;
        let theta = self.cfg.theta();
        let wmax = self.weight_max();
        // Train on the first resolved conditional branch in the packet (the
        // packet-level prediction applies to it).
        let Some(r) = ev.conditional_branches().next() else {
            return;
        };
        if predicted == r.taken && sum.abs() > theta {
            return; // confident and correct: no training
        }
        self.weights.begin_cycle(0);
        let idx = self.index(ev.pc);
        let mut row = self.weights.read(idx).clone();
        let t = if r.taken { 1i16 } else { -1i16 };
        row[0] = (row[0] + t).clamp(-wmax - 1, wmax);
        for i in 0..self.cfg.hist_len.min(ev.hist.ghist.width()) {
            let x = if ev.hist.ghist.bit(i) { 1i16 } else { -1i16 };
            let w = &mut row[i as usize + 1];
            *w = (*w + t * x).clamp(-wmax - 1, wmax);
        }
        self.weights.write(idx, row);
    }

    fn arm_baseline(&mut self) -> bool {
        self.weights.arm_baseline();
        true
    }

    fn reset_baseline(&mut self) {
        self.weights.reset_to_baseline();
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.weights.save_state(w, |w, row| {
            w.write_u64(row.len() as u64);
            for &wt in row {
                w.write_i64(i64::from(wt));
            }
        });
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let row_len = self.cfg.hist_len as u64 + 1;
        self.weights.load_state(r, |r| {
            let n = r.read_u64_capped("weight row length", row_len)?;
            if n != row_len {
                return Err(SnapError::BadValue {
                    what: "weight row length",
                    got: n,
                });
            }
            let mut row = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let v = r.read_i64("perceptron weight")?;
                if i16::try_from(v).is_err() {
                    return Err(SnapError::Shape {
                        detail: format!("perceptron weight {v} exceeds i16 range"),
                    });
                }
                row.push(v as i16);
            }
            Ok(row)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;
    use cobra_sim::HistoryRegister;

    fn step(p: &mut Perceptron, ghist: &HistoryRegister, outcome: bool) -> Option<bool> {
        let resp = p.predict(&PredictQuery {
            cycle: 0,
            pc: 0x2000,
            width: 4,
            hist: Some(HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            }),
        });
        let predicted = resp.pred.slot(0).taken;
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken: outcome,
            target: 0x40,
        }];
        p.update(&UpdateEvent {
            pc: 0x2000,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta: resp.meta,
            pred: &resp.pred,
            resolutions: &res,
            mispredicted_slot: None,
        });
        predicted
    }

    #[test]
    fn learns_linearly_separable_pattern() {
        // Outcome = history bit 2 (a simple correlation a perceptron nails).
        let mut p = Perceptron::new(PerceptronConfig::default_size(4));
        let mut ghist = HistoryRegister::new(32);
        let mut correct = 0;
        let mut total = 0;
        for step_i in 0..300 {
            let outcome = ghist.bit(2);
            let predicted = step(&mut p, &ghist, outcome);
            if step_i > 150 {
                total += 1;
                if predicted == Some(outcome) {
                    correct += 1;
                }
            }
            // Interleave an unrelated pseudo-random branch into history.
            ghist.push(outcome);
            ghist.push(step_i % 3 == 0);
        }
        assert!(
            correct * 100 >= total * 95,
            "perceptron should learn h[2] correlation: {correct}/{total}"
        );
    }

    #[test]
    fn weights_saturate() {
        let mut p = Perceptron::new(PerceptronConfig {
            weight_bits: 4,
            ..PerceptronConfig::default_size(4)
        });
        let ghist = HistoryRegister::new(32);
        for _ in 0..100 {
            step(&mut p, &ghist, true);
        }
        let idx = p.index(0x2000);
        let row = p.weights.peek(idx).clone();
        assert!(row.iter().all(|&w| (-8..=7).contains(&w)));
    }

    #[test]
    fn single_prediction_covers_packet() {
        let mut p = Perceptron::new(PerceptronConfig::default_size(4));
        let ghist = HistoryRegister::new(32);
        let resp = p.predict(&PredictQuery {
            cycle: 0,
            pc: 0x2000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        });
        let d0 = resp.pred.slot(0).taken;
        assert!(d0.is_some());
        for i in 1..4 {
            assert_eq!(resp.pred.slot(i).taken, d0);
        }
    }

    #[test]
    fn theta_follows_jimenez() {
        let cfg = PerceptronConfig::default_size(4);
        assert_eq!(cfg.theta(), (1.93 * 24.0 + 14.0) as i32);
    }

    #[test]
    fn update_reads_weights_port_cost_declared() {
        let p = Perceptron::new(PerceptronConfig::default_size(4));
        let (_, spec) = &p.storage().srams[0];
        assert_eq!(spec.ports, cobra_sim::PortKind::TwoReadOneWrite);
    }
}
