//! A statistical corrector (extension component).
//!
//! TAGE-SC-L pairs TAGE with a statistical corrector that reverts TAGE's
//! prediction when statistics say TAGE is likely wrong for this (PC,
//! history) context. The paper's TAGE-L design deliberately omits it
//! ("vaguely similar to TAGE-SC-L, only with no statistical corrector");
//! this module provides a simplified GEHL-style corrector so that the
//! omission can be ablated: a few tables of signed counters over different
//! history lengths vote, and when their combined confidence is high they
//! override the incoming direction.

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{PortKind, SnapError, SramModel, StateReader, StateWriter};

/// Configuration for a [`StatisticalCorrector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectorConfig {
    /// Entries per table (power of two).
    pub entries: u64,
    /// Signed counter width in bits.
    pub counter_bits: u8,
    /// History lengths, one per table (0 = PC-only bias table).
    pub hist_lengths: Vec<u32>,
    /// Confidence threshold: the vote sum must reach this magnitude to
    /// override the incoming prediction.
    pub threshold: i32,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl CorrectorConfig {
    /// A small three-table corrector.
    pub fn small(width: u8) -> Self {
        Self {
            entries: 1024,
            counter_bits: 6,
            hist_lengths: vec![0, 5, 13],
            threshold: 12,
            latency: 3,
            width,
        }
    }
}

/// A GEHL-style statistical corrector.
#[derive(Debug)]
pub struct StatisticalCorrector {
    cfg: CorrectorConfig,
    tables: Vec<SramModel<i8>>,
}

mod meta_layout {
    pub const CONFIDENT: u32 = 0; // 8 bits, per slot
    pub const DIRECTION: u32 = 8; // 8 bits, per slot
}

impl StatisticalCorrector {
    /// Builds a corrector.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, no tables are configured,
    /// or the latency is below 2.
    pub fn new(cfg: CorrectorConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(!cfg.hist_lengths.is_empty(), "need at least one table");
        assert!(cfg.latency >= 2, "history users need latency >= 2");
        assert!(
            cfg.entries.is_multiple_of(cfg.width as u64),
            "entries must divide across slot banks"
        );
        let tables = cfg
            .hist_lengths
            .iter()
            .map(|_| {
                SramModel::new_banked(
                    cfg.entries,
                    cfg.counter_bits as u64,
                    PortKind::TwoReadOneWrite,
                    cfg.width as u64,
                    0i8,
                )
            })
            .collect();
        Self { cfg, tables }
    }

    /// The corrector's configuration.
    pub fn config(&self) -> &CorrectorConfig {
        &self.cfg
    }

    fn index(
        &self,
        t: usize,
        slot: usize,
        slot_pc: u64,
        ghist: &cobra_sim::HistoryRegister,
    ) -> u64 {
        let rows = self.cfg.entries / self.cfg.width as u64;
        let n = bits::clog2(rows);
        let hl = self.cfg.hist_lengths[t].min(ghist.width());
        let h = if hl == 0 { 0 } else { ghist.folded(hl, n) };
        let row = (bits::mix64(slot_pc >> 1) ^ h ^ ((t as u64) << 3)) & bits::mask(n);
        slot as u64 * rows + row
    }

    fn counter_max(&self) -> i8 {
        ((1u32 << (self.cfg.counter_bits - 1)) - 1) as i8
    }

    fn vote(
        &mut self,
        cycle: u64,
        slot: usize,
        slot_pc: u64,
        ghist: &cobra_sim::HistoryRegister,
    ) -> i32 {
        let mut sum = 0i32;
        for t in 0..self.tables.len() {
            let idx = self.index(t, slot, slot_pc, ghist);
            self.tables[t].begin_cycle(cycle);
            sum += *self.tables[t].read(idx) as i32;
        }
        sum
    }
}

impl Component for StatisticalCorrector {
    fn kind(&self) -> &'static str {
        "sc"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        16
    }

    fn field_profile(&self) -> FieldProfile {
        // Reverts the incoming direction only when statistically confident.
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::NONE,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_lengths.iter().copied().max().unwrap_or(0)
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        let rows = self.cfg.entries / self.cfg.width as u64;
        let n = bits::clog2(rows);
        self.cfg
            .hist_lengths
            .iter()
            .enumerate()
            .map(|(i, &hl)| IndexDescriptor {
                table: format!("sc-t{i}"),
                sets: rows,
                pc_bits: n,
                ghist_bits: hl,
                lhist_bits: 0,
                path_bits: 0,
            })
            .collect()
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        for (i, t) in self.tables.iter().enumerate() {
            r.add_sram(format!("sc-t{i}"), t.spec());
        }
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let (reads, writes) = t.access_counts();
                crate::types::AccessReport {
                    name: format!("t{i}"),
                    spec: t.spec(),
                    reads,
                    writes,
                    rows_touched: t.rows_touched(),
                }
            })
            .collect()
    }

    fn port_violations(&self) -> usize {
        self.tables.iter().map(|t| t.violations().len()).sum()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut meta = 0u64;
        use meta_layout::*;
        if let Some(h) = &q.hist {
            for i in 0..q.width as usize {
                let sum = self.vote(q.cycle, i, q.slot_pc(i), h.ghist);
                if sum.abs() >= self.cfg.threshold {
                    meta |= 1u64 << (CONFIDENT + i as u32);
                    meta |= ((sum >= 0) as u64) << (DIRECTION + i as u32);
                }
            }
        }
        // Its own bundle is empty: the correction is applied in `compose`,
        // overriding only slots where the corrector is confident.
        Response {
            pred: PredictionBundle::new(q.width),
            meta: Meta(meta),
        }
    }

    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        let mut out = inputs
            .first()
            .copied()
            .unwrap_or_else(|| PredictionBundle::new(width));
        use meta_layout::*;
        if let Some(r) = own {
            for i in 0..width as usize {
                if bits::field(r.meta.0, CONFIDENT + i as u32, 1) == 1
                    && out.slot(i).taken.is_some()
                {
                    // Correct only slots that carry a prediction to correct.
                    out.slot_mut(i).taken =
                        Some(bits::field(r.meta.0, DIRECTION + i as u32, 1) == 1);
                }
            }
        }
        out
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        let cmax = self.counter_max();
        for r in ev.conditional_branches() {
            let slot_pc = ev.pc + r.slot as u64 * crate::types::SLOT_BYTES;
            // GEHL-style: train when the final prediction was wrong or the
            // vote was below threshold.
            let sum = self.vote(0, r.slot as usize, slot_pc, ev.hist.ghist);
            let final_taken = ev.pred.slot(r.slot as usize).taken.unwrap_or(false);
            if final_taken != r.taken || sum.abs() < self.cfg.threshold {
                for t in 0..self.tables.len() {
                    let idx = self.index(t, r.slot as usize, slot_pc, ev.hist.ghist);
                    let v = *self.tables[t].peek(idx);
                    let nv = if r.taken {
                        (v + 1).min(cmax)
                    } else {
                        (v - 1).max(-cmax - 1)
                    };
                    self.tables[t].write(idx, nv);
                }
            }
        }
    }

    fn arm_baseline(&mut self) -> bool {
        for t in &mut self.tables {
            t.arm_baseline();
        }
        true
    }

    fn reset_baseline(&mut self) {
        for t in &mut self.tables {
            t.reset_to_baseline();
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        for table in &self.tables {
            table.save_state(w, |w, &c| w.write_i64(i64::from(c)));
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        for table in &mut self.tables {
            table.load_state(r, |r| {
                let v = r.read_i64("corrector counter")?;
                i8::try_from(v).map_err(|_| SnapError::Shape {
                    detail: format!("corrector counter {v} exceeds i8 range"),
                })
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;
    use cobra_sim::HistoryRegister;

    fn step(
        sc: &mut StatisticalCorrector,
        ghist: &HistoryRegister,
        input_taken: bool,
        outcome: bool,
    ) -> Option<bool> {
        let resp = sc.predict(&PredictQuery {
            cycle: 0,
            pc: 0x3000,
            width: 4,
            hist: Some(HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            }),
        });
        let mut input = PredictionBundle::new(4);
        for i in 0..4 {
            input.slot_mut(i).taken = Some(input_taken);
        }
        let out = sc.compose(4, Some(&resp), &[input]);
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken: outcome,
            target: 0x40,
        }];
        sc.update(&UpdateEvent {
            pc: 0x3000,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta: resp.meta,
            pred: &out,
            resolutions: &res,
            mispredicted_slot: None,
        });
        out.slot(0).taken
    }

    #[test]
    fn corrects_a_consistently_wrong_input() {
        let mut sc = StatisticalCorrector::new(CorrectorConfig::small(4));
        let ghist = HistoryRegister::new(32);
        // The input predictor insists on "taken"; reality is "not taken".
        let mut corrected = false;
        for _ in 0..40 {
            if step(&mut sc, &ghist, true, false) == Some(false) {
                corrected = true;
            }
        }
        assert!(corrected, "the corrector must eventually flip the input");
    }

    #[test]
    fn leaves_correct_input_alone_when_unconfident() {
        let mut sc = StatisticalCorrector::new(CorrectorConfig::small(4));
        let ghist = HistoryRegister::new(32);
        let out = step(&mut sc, &ghist, true, true);
        assert_eq!(out, Some(true), "cold corrector must pass through");
    }

    #[test]
    fn does_not_invent_predictions() {
        let mut sc = StatisticalCorrector::new(CorrectorConfig::small(4));
        let ghist = HistoryRegister::new(32);
        // Saturate the corrector toward not-taken.
        for _ in 0..40 {
            step(&mut sc, &ghist, true, false);
        }
        let resp = sc.predict(&PredictQuery {
            cycle: 0,
            pc: 0x3000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        });
        // Input with NO direction prediction: corrector must not add one.
        let input = PredictionBundle::new(4);
        let out = sc.compose(4, Some(&resp), &[input]);
        assert_eq!(out.slot(0).taken, None);
    }

    #[test]
    fn storage_has_one_macro_per_table() {
        let sc = StatisticalCorrector::new(CorrectorConfig::small(8));
        assert_eq!(sc.storage().srams.len(), 3);
    }
}
