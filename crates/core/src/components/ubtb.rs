//! A small fully-associative micro-BTB ("uBTB1").
//!
//! The uBTB is the 1-cycle component of the TAGE-L design: it redirects
//! fetch on the very next cycle after a prediction, hiding the latency of
//! the backing predictors for hot branches. Because it responds at cycle 1
//! it never sees histories (the interface's history-timing rule); it keys
//! on the slot PC alone and carries a small direction counter so it can
//! provide a complete (kind + direction + target) prediction by itself.

use crate::iface::{Component, FieldProfile, FieldSet, PredictQuery, Response, UpdateEvent};
use crate::types::{BranchKind, Meta, PredictionBundle, StorageReport};
use cobra_sim::{SaturatingCounter, SnapError, StateReader, StateWriter};

/// Configuration for a [`MicroBtb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroBtbConfig {
    /// Number of fully-associative entries (≤ 64).
    pub entries: usize,
    /// Direction-counter width in bits.
    pub counter_bits: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl MicroBtbConfig {
    /// The paper's 32-entry uBTB.
    pub fn small(width: u8) -> Self {
        Self {
            entries: 32,
            counter_bits: 2,
            width,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct UbtbEntry {
    valid: bool,
    pc: u64,
    kind: BranchKind,
    target: u64,
    ctr: SaturatingCounter,
}

/// A 1-cycle fully-associative micro-BTB with direction hints.
#[derive(Debug)]
pub struct MicroBtb {
    cfg: MicroBtbConfig,
    entries: Vec<UbtbEntry>,
    victim_ptr: usize,
    baseline: Option<(Vec<UbtbEntry>, usize)>,
}

impl MicroBtb {
    /// Builds a uBTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or exceeds 64.
    pub fn new(cfg: MicroBtbConfig) -> Self {
        assert!(
            (1..=64).contains(&cfg.entries),
            "uBTB entries must be 1..=64"
        );
        let blank = UbtbEntry {
            valid: false,
            pc: 0,
            kind: BranchKind::Conditional,
            target: 0,
            ctr: SaturatingCounter::weakly_taken(cfg.counter_bits),
        };
        Self {
            entries: vec![blank; cfg.entries],
            cfg,
            victim_ptr: 0,
            baseline: None,
        }
    }

    /// The uBTB's configuration.
    pub fn config(&self) -> &MicroBtbConfig {
        &self.cfg
    }

    fn find(&self, slot_pc: u64) -> Option<usize> {
        self.entries.iter().position(|e| e.valid && e.pc == slot_pc)
    }

    fn meta_shift(slot: usize) -> u32 {
        // Per slot: 1 hit bit + 6 index bits.
        slot as u32 * 7
    }
}

impl Component for MicroBtb {
    fn kind(&self) -> &'static str {
        "ubtb"
    }

    fn latency(&self) -> u8 {
        1
    }

    fn meta_bits(&self) -> u32 {
        self.cfg.width as u32 * 7
    }

    fn field_profile(&self) -> FieldProfile {
        // Populates kind/target (and taken for conditionals) on a hit,
        // nothing on a miss.
        FieldProfile {
            may: FieldSet::ALL,
            always: FieldSet::NONE,
        }
    }

    fn storage(&self) -> StorageReport {
        // Fully associative: all flops (CAM), no SRAM macro.
        let entry_bits = 1 + 40 + 3 + 40 + self.cfg.counter_bits as u64;
        let mut r = StorageReport::new();
        r.add_flops(self.cfg.entries as u64 * entry_bits + 8);
        r
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        debug_assert!(q.hist.is_none(), "uBTB is a 1-cycle component");
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        for i in 0..q.width as usize {
            if let Some(idx) = self.find(q.slot_pc(i)) {
                let e = &self.entries[idx];
                pred.slot_mut(i).kind = Some(e.kind);
                pred.slot_mut(i).set_target(Some(e.target));
                if e.kind == BranchKind::Conditional {
                    pred.slot_mut(i).taken = Some(e.ctr.is_taken());
                }
                meta |= (1 | ((idx as u64) << 1)) << Self::meta_shift(i);
            }
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        for r in ev.resolutions {
            let slot_pc = ev.pc + r.slot as u64 * crate::types::SLOT_BYTES;
            let m = ev.meta.0 >> Self::meta_shift(r.slot as usize);
            let hit = m & 1 == 1;
            let hit_idx = ((m >> 1) & 0x3f) as usize;
            if hit && hit_idx < self.entries.len() && self.entries[hit_idx].pc == slot_pc {
                let e = &mut self.entries[hit_idx];
                e.kind = r.kind;
                e.ctr.train(r.taken);
                if r.taken {
                    e.target = r.target;
                }
            } else if r.taken {
                // Install: reuse a current match if one appeared since
                // predict time, else round-robin victim.
                let idx = self.find(slot_pc).unwrap_or_else(|| {
                    let v = self.victim_ptr % self.entries.len();
                    self.victim_ptr = self.victim_ptr.wrapping_add(1);
                    v
                });
                self.entries[idx] = UbtbEntry {
                    valid: true,
                    pc: slot_pc,
                    kind: r.kind,
                    target: r.target,
                    ctr: SaturatingCounter::weakly_taken(self.cfg.counter_bits),
                };
            }
        }
    }

    fn arm_baseline(&mut self) -> bool {
        // The uBTB is tiny (<= 64 flop entries): a full clone is cheaper
        // than row-level dirty tracking.
        self.baseline = Some((self.entries.clone(), self.victim_ptr));
        true
    }

    fn reset_baseline(&mut self) {
        if let Some((entries, ptr)) = &self.baseline {
            self.entries.clone_from(entries);
            self.victim_ptr = *ptr;
        }
    }

    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.victim_ptr as u64);
        for e in &self.entries {
            w.write_bool(e.valid);
            w.write_u64(e.pc);
            w.write_u64(e.kind.code());
            w.write_u64(e.target);
            w.write_u64(u64::from(e.ctr.value()));
        }
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.victim_ptr = r.read_u64("ubtb victim ptr")? as usize;
        for e in &mut self.entries {
            e.valid = r.read_bool("ubtb valid")?;
            e.pc = r.read_u64("ubtb pc")?;
            let code = r.read_u64("ubtb kind")?;
            e.kind = BranchKind::from_code(code).ok_or(SnapError::BadValue {
                what: "ubtb kind",
                got: code,
            })?;
            e.target = r.read_u64("ubtb target")?;
            let ctr = r.read_u64_capped("ubtb counter", 0xff)?;
            e.ctr = SaturatingCounter::new(self.cfg.counter_bits, 0);
            e.ctr.set(ctr as u8);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use cobra_sim::HistoryRegister;

    fn query(pc: u64) -> PredictQuery<'static> {
        PredictQuery {
            cycle: 0,
            pc,
            width: 4,
            hist: None,
        }
    }

    fn resolve(u: &mut MicroBtb, pc: u64, meta: Meta, res: &[SlotResolution]) {
        let ghist = HistoryRegister::new(8);
        let pred = PredictionBundle::new(4);
        u.update(&UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            },
            meta,
            pred: &pred,
            resolutions: res,
            mispredicted_slot: None,
        });
    }

    fn taken_cond(slot: u8, target: u64) -> SlotResolution {
        SlotResolution {
            slot,
            kind: BranchKind::Conditional,
            taken: true,
            target,
        }
    }

    #[test]
    fn provides_complete_prediction_after_install() {
        let mut u = MicroBtb::new(MicroBtbConfig::small(4));
        let r = u.predict(&query(0x100));
        resolve(&mut u, 0x100, r.meta, &[taken_cond(1, 0x500)]);
        let r = u.predict(&query(0x100));
        let s = r.pred.slot(1);
        assert_eq!(s.kind, Some(BranchKind::Conditional));
        assert_eq!(s.taken, Some(true));
        assert_eq!(s.target(), Some(0x500));
    }

    #[test]
    fn counter_learns_not_taken() {
        let mut u = MicroBtb::new(MicroBtbConfig::small(4));
        let r = u.predict(&query(0x100));
        resolve(&mut u, 0x100, r.meta, &[taken_cond(0, 0x500)]);
        for _ in 0..2 {
            let r = u.predict(&query(0x100));
            resolve(
                &mut u,
                0x100,
                r.meta,
                &[SlotResolution {
                    slot: 0,
                    kind: BranchKind::Conditional,
                    taken: false,
                    target: 0,
                }],
            );
        }
        let r = u.predict(&query(0x100));
        assert_eq!(r.pred.slot(0).taken, Some(false));
        assert_eq!(
            r.pred.slot(0).target(),
            Some(0x500),
            "target survives direction retraining"
        );
    }

    #[test]
    fn capacity_eviction_round_robin() {
        let mut u = MicroBtb::new(MicroBtbConfig {
            entries: 2,
            counter_bits: 2,
            width: 4,
        });
        for i in 0..3u64 {
            let pc = 0x1000 + i * 0x40;
            let r = u.predict(&query(pc));
            resolve(&mut u, pc, r.meta, &[taken_cond(0, pc + 8)]);
        }
        // The first entry must have been evicted.
        let r = u.predict(&query(0x1000));
        assert!(r.pred.slot(0).kind.is_none());
        let r = u.predict(&query(0x1080));
        assert_eq!(r.pred.slot(0).target(), Some(0x1088));
    }

    #[test]
    fn unconditional_jump_has_no_direction() {
        let mut u = MicroBtb::new(MicroBtbConfig::small(4));
        let r = u.predict(&query(0x200));
        resolve(
            &mut u,
            0x200,
            r.meta,
            &[SlotResolution {
                slot: 2,
                kind: BranchKind::Jump,
                taken: true,
                target: 0x900,
            }],
        );
        let r = u.predict(&query(0x200));
        assert_eq!(r.pred.slot(2).kind, Some(BranchKind::Jump));
        assert_eq!(r.pred.slot(2).taken, None);
    }

    #[test]
    fn one_cycle_latency_and_flop_storage() {
        let u = MicroBtb::new(MicroBtbConfig::small(8));
        assert_eq!(u.latency(), 1);
        let s = u.storage();
        assert!(s.srams.is_empty(), "uBTB is a CAM, not an SRAM");
        assert!(s.flop_bits > 0);
    }
}
