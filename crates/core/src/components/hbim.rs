//! History-indexed bimodal counter tables (HBIM).
//!
//! One parameterized component covers the whole family of untagged counter
//! tables from the paper: a plain PC-indexed BIM, global-history-indexed
//! tables (GBIM / GHT), local-history-indexed tables (LBIM / LHT), and the
//! hashed GShare / GSelect variants. The indexing option is the
//! [`IndexScheme`] parameter, matching the paper's "bimodal counter tables
//! with a parameterized indexing option, so they can be indexed by a global
//! history, local history, PC, or any hashed combination of the above".

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{PortKind, SaturatingCounter, SnapError, SramModel, StateReader, StateWriter};

/// How an [`Hbim`] computes its table index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexScheme {
    /// Pure PC indexing (a classic bimodal table). Usable at latency ≥ 1.
    Pc,
    /// Pure global-history indexing over the low `bits` history bits.
    GlobalHistory {
        /// History bits used for the index.
        bits: u32,
    },
    /// PC xor folded global history (GShare).
    GShare {
        /// Global-history length folded into the index.
        hist_bits: u32,
    },
    /// PC bits concatenated with global-history bits (GSelect).
    GSelect {
        /// PC bits in the concatenation.
        pc_bits: u32,
        /// History bits in the concatenation.
        hist_bits: u32,
    },
    /// Local-history indexing: the per-PC history selects the counter.
    LocalHistory {
        /// Local-history bits used for the index.
        bits: u32,
    },
    /// PC xor folded *path* history (targets of recent taken redirections)
    /// — the history-provider variant of paper Section IV-B3.
    PathHash {
        /// Path-history bits folded into the index.
        bits: u32,
    },
}

impl IndexScheme {
    /// `true` if this scheme reads a history vector, which forces latency
    /// ≥ 2 under the interface's history-timing rule.
    pub fn uses_history(self) -> bool {
        !matches!(self, IndexScheme::Pc)
    }

    /// Local-history bits this scheme requires from the provider.
    pub fn local_history_bits(self) -> u32 {
        match self {
            IndexScheme::LocalHistory { bits } => bits,
            _ => 0,
        }
    }

    /// Global-history bits this scheme reads from the provider.
    pub fn global_history_bits(self) -> u32 {
        match self {
            IndexScheme::GlobalHistory { bits } => bits,
            IndexScheme::GShare { hist_bits } => hist_bits,
            IndexScheme::GSelect { hist_bits, .. } => hist_bits,
            _ => 0,
        }
    }

    /// `true` if this scheme reads the path-history register.
    pub fn uses_path(self) -> bool {
        matches!(self, IndexScheme::PathHash { .. })
    }
}

/// Configuration for an [`Hbim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HbimConfig {
    /// Number of counters (power of two).
    pub entries: u64,
    /// Counter width in bits.
    pub counter_bits: u8,
    /// Index computation.
    pub index: IndexScheme,
    /// Response latency (≥ 2 if the index uses history).
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
    /// Superscalar mode: read one (banked) counter per slot. When `false`
    /// the table reads a single counter for the whole packet, exhibiting
    /// the intra-packet aliasing the paper describes in Section III-C.
    pub superscalar: bool,
}

impl HbimConfig {
    /// A PC-indexed bimodal table ("BIM2" in the paper's designs).
    pub fn bim(entries: u64, width: u8) -> Self {
        Self {
            entries,
            counter_bits: 2,
            index: IndexScheme::Pc,
            latency: 2,
            width,
            superscalar: true,
        }
    }

    /// A global-history-indexed table ("GBIM2" / the Tournament's BHT).
    pub fn gbim(entries: u64, hist_bits: u32, width: u8) -> Self {
        Self {
            entries,
            counter_bits: 2,
            index: IndexScheme::GShare { hist_bits },
            latency: 2,
            width,
            superscalar: true,
        }
    }

    /// A local-history-indexed table ("LBIM2").
    pub fn lbim(entries: u64, local_bits: u32, width: u8) -> Self {
        Self {
            entries,
            counter_bits: 2,
            index: IndexScheme::LocalHistory { bits: local_bits },
            latency: 2,
            width,
            superscalar: true,
        }
    }
}

/// A bimodal counter table with parameterized indexing.
///
/// Superscalar prediction (Section III-C): in superscalar mode the table is
/// banked by slot — each slot within the fetch packet reads its own
/// counter, so adjacent branches in one packet do not alias. The metadata
/// field stores the read counter values so commit-time updates need no
/// second read port (Section III-D).
#[derive(Debug)]
pub struct Hbim {
    cfg: HbimConfig,
    table: SramModel<u8>,
}

impl Hbim {
    /// Builds the table from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, the counter is wider than
    /// 8 bits, the packet width exceeds the framework maximum, or the
    /// latency violates the history-timing rule.
    pub fn new(cfg: HbimConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(
            (1..=8).contains(&cfg.counter_bits),
            "counter width must be 1..=8"
        );
        assert!(
            (1..=crate::types::MAX_FETCH_WIDTH as u8).contains(&cfg.width),
            "invalid fetch width"
        );
        assert!(
            !cfg.index.uses_history() || cfg.latency >= 2,
            "history-indexed tables need latency >= 2"
        );
        assert!(cfg.latency >= 1, "latency must be >= 1");
        let init = SaturatingCounter::weakly_not_taken(cfg.counter_bits).value();
        // Superscalar tables are banked by prediction slot so one packet's
        // parallel reads are conflict-free (Section III-C/III-D).
        let banks = if cfg.superscalar { cfg.width as u64 } else { 1 };
        assert!(
            cfg.entries.is_multiple_of(banks),
            "entries must divide across slot banks"
        );
        Self {
            table: SramModel::new_banked(
                cfg.entries,
                cfg.counter_bits as u64,
                PortKind::DualPort,
                banks,
                init,
            ),
            cfg,
        }
    }

    /// The table's configuration.
    pub fn config(&self) -> &HbimConfig {
        &self.cfg
    }

    fn index_bits(&self) -> u32 {
        bits::clog2(self.table.rows_per_bank())
    }

    /// Flat entry index for a (slot, row-hash) pair.
    fn entry(&self, slot: usize, row: u64) -> u64 {
        if self.cfg.superscalar {
            self.table.entry_of(slot as u64, row)
        } else {
            row
        }
    }

    /// The slot-invariant history contribution to the index: every slot in
    /// a packet shares one history view, so the fold is computed once per
    /// query and combined with the per-slot PC hash in [`Self::combine`].
    fn hist_part(
        &self,
        n: u32,
        ghist: Option<&cobra_sim::HistoryRegister>,
        lhist: u64,
        phist: u64,
    ) -> u64 {
        match self.cfg.index {
            IndexScheme::Pc => 0,
            IndexScheme::GlobalHistory { bits: h } => {
                let g = ghist.map_or(0, |g| g.low_bits(h.min(g.width()).min(64)));
                bits::xor_fold(g, n)
            }
            IndexScheme::GShare { hist_bits } => {
                ghist.map_or(0, |g| g.folded(hist_bits.min(g.width()), n))
            }
            IndexScheme::GSelect { hist_bits, .. } => {
                let g = ghist.map_or(0, |g| g.low_bits(hist_bits.min(g.width()).min(64)));
                g & bits::mask(hist_bits)
            }
            IndexScheme::LocalHistory { bits: h } => bits::xor_fold(lhist & bits::mask(h), n),
            IndexScheme::PathHash { bits: h } => bits::xor_fold(phist & bits::mask(h), n),
        }
    }

    /// Combines a precomputed history part with one slot's PC into the
    /// final counter index.
    fn combine(&self, n: u32, hist_part: u64, slot_pc: u64) -> u64 {
        let pc_part = bits::mix64(slot_pc >> 1);
        let raw = match self.cfg.index {
            IndexScheme::Pc => pc_part,
            IndexScheme::GlobalHistory { .. } => hist_part ^ (pc_part & 0xf),
            IndexScheme::GShare { .. } => pc_part ^ hist_part,
            IndexScheme::GSelect {
                pc_bits, hist_bits, ..
            } => ((pc_part & bits::mask(pc_bits)) << hist_bits) | hist_part,
            IndexScheme::LocalHistory { .. } => hist_part ^ (pc_part & 0x7),
            IndexScheme::PathHash { .. } => pc_part ^ hist_part,
        };
        raw & bits::mask(n)
    }

    /// Computes the counter index for `slot_pc` under the configured scheme.
    fn index(
        &self,
        slot_pc: u64,
        ghist: Option<&cobra_sim::HistoryRegister>,
        lhist: u64,
        phist: u64,
    ) -> u64 {
        let n = self.index_bits();
        self.combine(n, self.hist_part(n, ghist, lhist, phist), slot_pc)
    }

    fn counter_at(&mut self, idx: u64) -> SaturatingCounter {
        let v = *self.table.read(idx);
        let mut c = SaturatingCounter::new(self.cfg.counter_bits, 0);
        c.set(v);
        c
    }

    fn slots(&self) -> usize {
        if self.cfg.superscalar {
            self.cfg.width as usize
        } else {
            1
        }
    }
}

impl Component for Hbim {
    fn kind(&self) -> &'static str {
        match self.cfg.index {
            IndexScheme::Pc => "bim",
            IndexScheme::GlobalHistory { .. } => "ght",
            IndexScheme::GShare { .. } => "gbim",
            IndexScheme::GSelect { .. } => "gsel",
            IndexScheme::LocalHistory { .. } => "lbim",
            IndexScheme::PathHash { .. } => "pbim",
        }
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn meta_bits(&self) -> u32 {
        self.slots() as u32 * self.cfg.counter_bits as u32
    }

    fn local_history_bits(&self) -> u32 {
        self.cfg.index.local_history_bits()
    }

    fn field_profile(&self) -> FieldProfile {
        // A bimodal table produces a direction for every slot on every
        // query, so it unconditionally populates `taken`.
        FieldProfile {
            may: FieldSet::TAKEN,
            always: FieldSet::TAKEN,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.index.global_history_bits()
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        let n = self.index_bits();
        // `combine` masks the PC hash differently per scheme: full width for
        // Pc/GShare/PathHash, 4 bits for Alpha-style GlobalHistory, 3 bits
        // for LocalHistory, and the configured count for GSelect.
        let (pc_bits, ghist_bits, lhist_bits, path_bits) = match self.cfg.index {
            IndexScheme::Pc => (n, 0, 0, 0),
            IndexScheme::GlobalHistory { bits } => (n.min(4), bits, 0, 0),
            IndexScheme::GShare { hist_bits } => (n, hist_bits, 0, 0),
            IndexScheme::GSelect { pc_bits, hist_bits } => (pc_bits, hist_bits, 0, 0),
            IndexScheme::LocalHistory { bits } => (n.min(3), 0, bits, 0),
            IndexScheme::PathHash { bits } => (n, 0, 0, bits),
        };
        vec![IndexDescriptor {
            table: format!("{}-counters", self.kind()),
            sets: self.table.rows_per_bank(),
            pc_bits,
            ghist_bits,
            lhist_bits,
            path_bits,
        }]
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_sram(format!("{}-counters", self.kind()), self.table.spec());
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        let (reads, writes) = self.table.access_counts();
        vec![crate::types::AccessReport {
            name: "table".into(),
            spec: self.table.spec(),
            reads,
            writes,
            rows_touched: self.table.rows_touched(),
        }]
    }

    fn port_violations(&self) -> usize {
        self.table.violations().len()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        self.table.begin_cycle(q.cycle);
        let ghist = q.hist.as_ref().map(|h| h.ghist);
        let lhist = q.hist.as_ref().map_or(0, |h| h.lhist);
        let phist = q.hist.as_ref().map_or(0, |h| h.phist);
        let mut pred = PredictionBundle::new(q.width);
        let mut meta = 0u64;
        if self.cfg.superscalar {
            let n = self.index_bits();
            let hpart = self.hist_part(n, ghist, lhist, phist);
            for i in 0..q.width as usize {
                let row = self.combine(n, hpart, q.slot_pc(i));
                let c = self.counter_at(self.entry(i, row));
                pred.slot_mut(i).taken = Some(c.is_taken());
                meta |= (c.value() as u64) << (i as u32 * self.cfg.counter_bits as u32);
            }
        } else {
            let idx = self.index(q.pc, ghist, lhist, phist);
            let c = self.counter_at(idx);
            for i in 0..q.width as usize {
                pred.slot_mut(i).taken = Some(c.is_taken());
            }
            meta = c.value() as u64;
        }
        Response {
            pred,
            meta: Meta(meta),
        }
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        self.table.begin_cycle(0);
        let cb = self.cfg.counter_bits as u32;
        for r in ev.conditional_branches() {
            let (idx, stored) = if self.cfg.superscalar {
                let slot_pc = ev.pc + r.slot as u64 * crate::types::SLOT_BYTES;
                let row = self.index(slot_pc, Some(ev.hist.ghist), ev.hist.lhist, ev.hist.phist);
                let stored = bits::field(ev.meta.0, r.slot as u32 * cb, cb) as u8;
                (self.entry(r.slot as usize, row), stored)
            } else {
                let row = self.index(ev.pc, Some(ev.hist.ghist), ev.hist.lhist, ev.hist.phist);
                (row, bits::field(ev.meta.0, 0, cb) as u8)
            };
            // Train from the metadata-recovered value, avoiding an
            // update-time read port (Section III-D).
            let mut c = SaturatingCounter::new(self.cfg.counter_bits, 0);
            c.set(stored);
            c.train(r.taken);
            self.table.write(idx, c.value());
        }
    }

    fn arm_baseline(&mut self) -> bool {
        self.table.arm_baseline();
        true
    }

    fn reset_baseline(&mut self) {
        self.table.reset_to_baseline();
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w, |w, &c| w.write_u64(u64::from(c)));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.table
            .load_state(r, |r| Ok(r.read_u64_capped("bim counter", 0xff)? as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;
    use cobra_sim::HistoryRegister;

    fn ev_ctx<'a>(
        pc: u64,
        ghist: &'a HistoryRegister,
        lhist: u64,
        meta: Meta,
        pred: &'a PredictionBundle,
        res: &'a [SlotResolution],
    ) -> UpdateEvent<'a> {
        UpdateEvent {
            pc,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist,
                phist: 0,
            },
            meta,
            pred,
            resolutions: res,
            mispredicted_slot: None,
        }
    }

    fn cond(slot: u8, taken: bool) -> SlotResolution {
        SlotResolution {
            slot,
            kind: BranchKind::Conditional,
            taken,
            target: 0x100,
        }
    }

    fn train_repeatedly(bim: &mut Hbim, pc: u64, slot: u8, taken: bool, times: usize) {
        let ghist = HistoryRegister::new(32);
        for _ in 0..times {
            let q = PredictQuery {
                cycle: 0,
                pc,
                width: 4,
                hist: Some(HistoryView {
                    ghist: &ghist,
                    lhist: 0,
                    phist: 0,
                }),
            };
            let r = bim.predict(&q);
            let res = [cond(slot, taken)];
            let pred = PredictionBundle::new(4);
            bim.update(&ev_ctx(pc, &ghist, 0, r.meta, &pred, &res));
        }
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut bim = Hbim::new(HbimConfig::bim(1024, 4));
        train_repeatedly(&mut bim, 0x4000, 1, true, 4);
        let ghist = HistoryRegister::new(32);
        let q = PredictQuery {
            cycle: 0,
            pc: 0x4000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        };
        let r = bim.predict(&q);
        assert_eq!(r.pred.slot(1).taken, Some(true));
    }

    #[test]
    fn superscalar_avoids_intra_packet_aliasing() {
        // Two adjacent branches with opposite behaviour in one packet.
        let mut bim = Hbim::new(HbimConfig::bim(1024, 4));
        let ghist = HistoryRegister::new(32);
        for _ in 0..6 {
            let q = PredictQuery {
                cycle: 0,
                pc: 0x4000,
                width: 4,
                hist: Some(HistoryView {
                    ghist: &ghist,
                    lhist: 0,
                    phist: 0,
                }),
            };
            let r = bim.predict(&q);
            let res = [cond(0, true), cond(2, false)];
            let pred = PredictionBundle::new(4);
            bim.update(&ev_ctx(0x4000, &ghist, 0, r.meta, &pred, &res));
        }
        let q = PredictQuery {
            cycle: 0,
            pc: 0x4000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        };
        let r = bim.predict(&q);
        assert_eq!(r.pred.slot(0).taken, Some(true));
        assert_eq!(r.pred.slot(2).taken, Some(false));
    }

    #[test]
    fn non_superscalar_aliases_within_packet() {
        let mut bim = Hbim::new(HbimConfig {
            superscalar: false,
            ..HbimConfig::bim(1024, 4)
        });
        let ghist = HistoryRegister::new(32);
        // Alternating outcomes on two branches in the same packet thrash
        // the single shared counter: predictions for both slots are equal.
        let q = PredictQuery {
            cycle: 0,
            pc: 0x4000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        };
        let r = bim.predict(&q);
        assert_eq!(r.pred.slot(0).taken, r.pred.slot(3).taken);
        assert_eq!(bim.meta_bits(), 2);
    }

    #[test]
    fn gshare_differs_by_history() {
        let mut g = Hbim::new(HbimConfig::gbim(4096, 12, 4));
        let mut h1 = HistoryRegister::new(32);
        let h0 = HistoryRegister::new(32);
        for i in 0..12 {
            h1.push(i % 2 == 0);
        }
        // Train taken under h1 only.
        for _ in 0..4 {
            let q = PredictQuery {
                cycle: 0,
                pc: 0x8000,
                width: 4,
                hist: Some(HistoryView {
                    ghist: &h1,
                    lhist: 0,
                    phist: 0,
                }),
            };
            let r = g.predict(&q);
            let res = [cond(0, true)];
            let pred = PredictionBundle::new(4);
            g.update(&ev_ctx(0x8000, &h1, 0, r.meta, &pred, &res));
        }
        let q1 = PredictQuery {
            cycle: 0,
            pc: 0x8000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &h1,
                lhist: 0,
                phist: 0,
            }),
        };
        assert_eq!(g.predict(&q1).pred.slot(0).taken, Some(true));
        let q0 = PredictQuery {
            cycle: 0,
            pc: 0x8000,
            width: 4,
            hist: Some(HistoryView {
                ghist: &h0,
                lhist: 0,
                phist: 0,
            }),
        };
        assert_eq!(
            g.predict(&q0).pred.slot(0).taken,
            Some(false),
            "different history must map to a different (untrained) counter"
        );
    }

    #[test]
    fn local_history_scheme_requests_provider_bits() {
        let l = Hbim::new(HbimConfig::lbim(1024, 10, 4));
        assert_eq!(l.local_history_bits(), 10);
        assert_eq!(l.kind(), "lbim");
    }

    #[test]
    fn update_uses_metadata_not_a_read_port() {
        let mut bim = Hbim::new(HbimConfig::bim(256, 4));
        let ghist = HistoryRegister::new(8);
        let q = PredictQuery {
            cycle: 5,
            pc: 0x40,
            width: 4,
            hist: Some(HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist: 0,
            }),
        };
        let r = bim.predict(&q);
        let before_reads = 4;
        let res = [cond(0, true)];
        let pred = PredictionBundle::new(4);
        bim.update(&ev_ctx(0x40, &ghist, 0, r.meta, &pred, &res));
        let (reads, writes) = {
            let _ = &bim;
            bim.table.access_counts()
        };
        assert_eq!(reads, before_reads, "update must not read the array");
        assert_eq!(writes, 1);
    }

    #[test]
    fn storage_reports_counter_bits() {
        let bim = Hbim::new(HbimConfig::bim(16384, 8));
        let r = bim.storage();
        assert_eq!(r.total_bits(), 16384 * 2);
    }

    #[test]
    fn path_hash_scheme_separates_by_path() {
        let mut p = Hbim::new(HbimConfig {
            entries: 4096,
            counter_bits: 2,
            index: IndexScheme::PathHash { bits: 16 },
            latency: 2,
            width: 4,
            superscalar: true,
        });
        assert_eq!(p.kind(), "pbim");
        let ghist = HistoryRegister::new(16);
        // Two different path histories, opposite outcomes at the same PC.
        let train = |p: &mut Hbim, phist: u64, taken: bool| {
            let q = PredictQuery {
                cycle: 0,
                pc: 0x6000,
                width: 4,
                hist: Some(HistoryView {
                    ghist: &ghist,
                    lhist: 0,
                    phist,
                }),
            };
            let r = p.predict(&q);
            let res = [cond(0, taken)];
            let pred = PredictionBundle::new(4);
            let mut hist = HistoryView {
                ghist: &ghist,
                lhist: 0,
                phist,
            };
            hist.phist = phist;
            p.update(&UpdateEvent {
                pc: 0x6000,
                width: 4,
                hist,
                meta: r.meta,
                pred: &pred,
                resolutions: &res,
                mispredicted_slot: None,
            });
            r
        };
        for _ in 0..4 {
            train(&mut p, 0xaaaa, true);
            train(&mut p, 0x5555, false);
        }
        let ra = train(&mut p, 0xaaaa, true);
        let rb = train(&mut p, 0x5555, false);
        assert_eq!(ra.pred.slot(0).taken, Some(true));
        assert_eq!(rb.pred.slot(0).taken, Some(false));
    }

    #[test]
    #[should_panic(expected = "history-indexed tables need latency")]
    fn history_index_at_latency_one_rejected() {
        let _ = Hbim::new(HbimConfig {
            latency: 1,
            ..HbimConfig::gbim(1024, 8, 4)
        });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_rejected() {
        let _ = Hbim::new(HbimConfig::bim(1000, 4));
    }
}
