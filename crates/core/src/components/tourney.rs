//! A tournament arbitration scheme ("TOURNEY3").
//!
//! The tournament selector chooses between two incoming predictions with a
//! global-history-indexed table of 2-bit choosers, as in the Alpha 21264.
//! It demonstrates the interface's multi-input arbitration (Section III-F:
//! "a predictor sub-component may be implemented to require multiple
//! `predict_in` inputs") and its metadata discipline (Section III-G3: "the
//! selector uses the metadata field to track the predictions made by the
//! sub-predictors to determine an update for the counter table").

use crate::iface::{
    Component, FieldProfile, FieldSet, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{Meta, PredictionBundle, StorageReport};
use cobra_sim::bits;
use cobra_sim::{PortKind, SaturatingCounter, SnapError, SramModel, StateReader, StateWriter};

/// Configuration for a [`Tourney`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TourneyConfig {
    /// Chooser-table entries (power of two).
    pub entries: u64,
    /// Chooser-counter width.
    pub counter_bits: u8,
    /// Global-history bits hashed into the chooser index.
    pub hist_bits: u32,
    /// Response latency.
    pub latency: u8,
    /// Fetch-packet width in slots.
    pub width: u8,
}

impl TourneyConfig {
    /// The paper's 1K-counter tournament selector.
    pub fn paper(width: u8) -> Self {
        Self {
            entries: 1024,
            counter_bits: 2,
            hist_bits: 12,
            latency: 3,
            width,
        }
    }
}

mod meta_layout {
    pub const CTR: u32 = 0; // 2 bits: chooser counter at predict
    pub const IN0_TAKEN: u32 = 2; // 8 bits
    pub const IN0_VALID: u32 = 10; // 8 bits
    pub const IN1_TAKEN: u32 = 18; // 8 bits
    pub const IN1_VALID: u32 = 26; // 8 bits
}

/// A two-input tournament selector.
///
/// Chooser semantics: a counter at or above its midpoint selects input 1
/// (conventionally the *local* sub-predictor), below selects input 0 (the
/// *global* one). The selected input provides the direction; target and
/// kind fields merge across both inputs so a BTB beneath either operand
/// still supplies targets.
#[derive(Debug)]
pub struct Tourney {
    cfg: TourneyConfig,
    chooser: SramModel<u8>,
}

impl Tourney {
    /// Builds a tournament selector.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or the latency is below 2.
    pub fn new(cfg: TourneyConfig) -> Self {
        assert!(bits::is_pow2(cfg.entries), "entries must be a power of two");
        assert!(cfg.latency >= 2, "the chooser reads history: latency >= 2");
        let init = SaturatingCounter::weakly_not_taken(cfg.counter_bits).value();
        Self {
            chooser: SramModel::new(
                cfg.entries,
                cfg.counter_bits as u64,
                PortKind::DualPort,
                init,
            ),
            cfg,
        }
    }

    /// The selector's configuration.
    pub fn config(&self) -> &TourneyConfig {
        &self.cfg
    }

    fn index(&self, pc: u64, ghist: &cobra_sim::HistoryRegister) -> u64 {
        let n = bits::clog2(self.cfg.entries);
        let h = ghist.folded(self.cfg.hist_bits.min(ghist.width()), n);
        (h ^ (bits::mix64(pc >> 1) & 0x3)) & bits::mask(n)
    }

    fn counter(&self, raw: u8) -> SaturatingCounter {
        let mut c = SaturatingCounter::new(self.cfg.counter_bits, 0);
        c.set(raw);
        c
    }
}

impl Component for Tourney {
    fn kind(&self) -> &'static str {
        "tourney"
    }

    fn latency(&self) -> u8 {
        self.cfg.latency
    }

    fn arity(&self) -> usize {
        2
    }

    fn meta_bits(&self) -> u32 {
        34
    }

    fn field_profile(&self) -> FieldProfile {
        // An arbiter forwards whichever arm it selects, so any field may
        // appear; it guarantees none of its own.
        FieldProfile {
            may: FieldSet::ALL,
            always: FieldSet::NONE,
        }
    }

    fn required_ghist_bits(&self) -> u32 {
        self.cfg.hist_bits
    }

    fn index_functions(&self) -> Vec<IndexDescriptor> {
        // `index` keeps only two PC bits (`mix64(pc) & 0x3`); the chooser
        // row is chosen almost entirely by folded global history.
        vec![IndexDescriptor {
            table: "tourney-chooser".into(),
            sets: self.cfg.entries,
            pc_bits: bits::clog2(self.cfg.entries).min(2),
            ghist_bits: self.cfg.hist_bits,
            lhist_bits: 0,
            path_bits: 0,
        }]
    }

    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_sram("tourney-chooser", self.chooser.spec());
        r
    }

    fn accesses(&self) -> Vec<crate::types::AccessReport> {
        let (reads, writes) = self.chooser.access_counts();
        vec![crate::types::AccessReport {
            name: "table".into(),
            spec: self.chooser.spec(),
            reads,
            writes,
            rows_touched: self.chooser.rows_touched(),
        }]
    }

    fn port_violations(&self) -> usize {
        self.chooser.violations().len()
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        self.chooser.begin_cycle(q.cycle);
        let mut meta = 0u64;
        if let Some(h) = &q.hist {
            let idx = self.index(q.pc, h.ghist);
            let raw = *self.chooser.read(idx);
            meta |= (raw as u64 & 0x3) << meta_layout::CTR;
        }
        // The selector contributes no prediction of its own; its decision
        // is applied in `compose`.
        Response {
            pred: PredictionBundle::new(q.width),
            meta: Meta(meta),
        }
    }

    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        match (own, inputs) {
            (Some(r), [in0, in1, ..]) => {
                let sel_local = self
                    .counter(bits::field(r.meta.0, meta_layout::CTR, 2) as u8)
                    .is_taken();
                let mut out = PredictionBundle::new(width);
                for i in 0..width as usize {
                    let (chosen, other) = if sel_local {
                        (in1.slot(i), in0.slot(i))
                    } else {
                        (in0.slot(i), in1.slot(i))
                    };
                    let s = out.slot_mut(i);
                    s.kind = chosen.kind.or(other.kind);
                    s.set_target(chosen.target().or(other.target()));
                    s.taken = chosen.taken.or(other.taken);
                }
                out
            }
            // Before the selector responds (or with a malformed input list)
            // the first operand is the default.
            (_, [in0, ..]) => *in0,
            _ => PredictionBundle::new(width),
        }
    }

    fn finalize_meta(&self, own: &Response, inputs: &[PredictionBundle]) -> Meta {
        use meta_layout::*;
        let mut meta = own.meta.0;
        if let [in0, in1, ..] = inputs {
            for i in 0..in0.width() as usize {
                if let Some(t) = in0.slot(i).taken {
                    meta |= 1u64 << (IN0_VALID + i as u32);
                    meta |= (t as u64) << (IN0_TAKEN + i as u32);
                }
                if let Some(t) = in1.slot(i).taken {
                    meta |= 1u64 << (IN1_VALID + i as u32);
                    meta |= (t as u64) << (IN1_TAKEN + i as u32);
                }
            }
        }
        Meta(meta)
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        use meta_layout::*;
        self.chooser.begin_cycle(0);
        let idx = self.index(ev.pc, ev.hist.ghist);
        let mut ctr = self.counter(bits::field(ev.meta.0, CTR, 2) as u8);
        let mut touched = false;
        for r in ev.conditional_branches() {
            let i = r.slot as u32;
            let v0 = bits::field(ev.meta.0, IN0_VALID + i, 1) == 1;
            let v1 = bits::field(ev.meta.0, IN1_VALID + i, 1) == 1;
            if !(v0 && v1) {
                continue;
            }
            let p0 = bits::field(ev.meta.0, IN0_TAKEN + i, 1) == 1;
            let p1 = bits::field(ev.meta.0, IN1_TAKEN + i, 1) == 1;
            if p0 != p1 {
                // Train toward the sub-predictor that was right.
                ctr.train(p1 == r.taken);
                touched = true;
            }
        }
        if touched {
            self.chooser.write(idx, ctr.value());
        }
    }

    fn arm_baseline(&mut self) -> bool {
        self.chooser.arm_baseline();
        true
    }

    fn reset_baseline(&mut self) {
        self.chooser.reset_to_baseline();
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.chooser
            .save_state(w, |w, &c| w.write_u64(u64::from(c)));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.chooser
            .load_state(r, |r| Ok(r.read_u64_capped("chooser counter", 0xff)? as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iface::{HistoryView, SlotResolution};
    use crate::types::BranchKind;
    use cobra_sim::HistoryRegister;

    fn bundle_with_dir(taken: bool) -> PredictionBundle {
        let mut b = PredictionBundle::new(4);
        for i in 0..4 {
            b.slot_mut(i).taken = Some(taken);
        }
        b
    }

    fn predict(t: &mut Tourney, ghist: &HistoryRegister) -> Response {
        t.predict(&PredictQuery {
            cycle: 0,
            pc: 0x100,
            width: 4,
            hist: Some(HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            }),
        })
    }

    fn train(
        t: &mut Tourney,
        ghist: &HistoryRegister,
        resp: &Response,
        in0: &PredictionBundle,
        in1: &PredictionBundle,
        outcome: bool,
    ) {
        let meta = t.finalize_meta(resp, &[*in0, *in1]);
        let pred = t.compose(4, Some(resp), &[*in0, *in1]);
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken: outcome,
            target: 0x40,
        }];
        t.update(&UpdateEvent {
            pc: 0x100,
            width: 4,
            hist: HistoryView {
                ghist,
                lhist: 0,
                phist: 0,
            },
            meta,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: None,
        });
    }

    #[test]
    fn pass_through_before_response() {
        let t = Tourney::new(TourneyConfig::paper(4));
        let in0 = bundle_with_dir(true);
        let in1 = bundle_with_dir(false);
        let out = t.compose(4, None, &[in0, in1]);
        assert_eq!(out, in0, "first operand is the default");
    }

    #[test]
    fn learns_to_prefer_the_correct_input() {
        let mut t = Tourney::new(TourneyConfig::paper(4));
        let ghist = HistoryRegister::new(32);
        let in0 = bundle_with_dir(true); // "global" — always wrong below
        let in1 = bundle_with_dir(false); // "local" — always right below
        for _ in 0..4 {
            let r = predict(&mut t, &ghist);
            train(&mut t, &ghist, &r, &in0, &in1, false);
        }
        let r = predict(&mut t, &ghist);
        let out = t.compose(4, Some(&r), &[in0, in1]);
        assert_eq!(out.slot(0).taken, Some(false), "selector must pick input 1");
    }

    #[test]
    fn defaults_to_global_input_initially() {
        let mut t = Tourney::new(TourneyConfig::paper(4));
        let ghist = HistoryRegister::new(32);
        let r = predict(&mut t, &ghist);
        let in0 = bundle_with_dir(true);
        let in1 = bundle_with_dir(false);
        let out = t.compose(4, Some(&r), &[in0, in1]);
        assert_eq!(out.slot(0).taken, Some(true));
    }

    #[test]
    fn merges_targets_across_inputs() {
        let mut t = Tourney::new(TourneyConfig::paper(4));
        let ghist = HistoryRegister::new(32);
        let r = predict(&mut t, &ghist);
        // Input 0 carries a BTB target; input 1 carries the direction.
        let mut in0 = PredictionBundle::new(4);
        in0.slot_mut(2).kind = Some(BranchKind::Conditional);
        in0.slot_mut(2).set_target(Some(0xcafe0));
        let mut in1 = PredictionBundle::new(4);
        in1.slot_mut(2).taken = Some(true);
        let out = t.compose(4, Some(&r), &[in0, in1]);
        assert_eq!(out.slot(2).target(), Some(0xcafe0));
        assert_eq!(out.slot(2).taken, Some(true));
        assert_eq!(out.slot(2).kind, Some(BranchKind::Conditional));
    }

    #[test]
    fn no_training_when_inputs_agree() {
        let mut t = Tourney::new(TourneyConfig::paper(4));
        let ghist = HistoryRegister::new(32);
        let both = bundle_with_dir(true);
        let before = predict(&mut t, &ghist).meta;
        for _ in 0..4 {
            let r = predict(&mut t, &ghist);
            train(&mut t, &ghist, &r, &both, &both, true);
        }
        let after = predict(&mut t, &ghist).meta;
        assert_eq!(
            bits::field(before.0, meta_layout::CTR, 2),
            bits::field(after.0, meta_layout::CTR, 2),
            "agreement must not move the chooser"
        );
    }

    #[test]
    fn finalize_meta_records_both_inputs() {
        let mut t = Tourney::new(TourneyConfig::paper(4));
        let ghist = HistoryRegister::new(32);
        let r = predict(&mut t, &ghist);
        let in0 = bundle_with_dir(true);
        let in1 = bundle_with_dir(false);
        let meta = t.finalize_meta(&r, &[in0, in1]);
        assert_eq!(bits::field(meta.0, meta_layout::IN0_TAKEN, 4), 0b1111);
        assert_eq!(bits::field(meta.0, meta_layout::IN1_TAKEN, 4), 0b0000);
        assert_eq!(bits::field(meta.0, meta_layout::IN0_VALID, 4), 0b1111);
    }

    #[test]
    fn arity_is_two() {
        let t = Tourney::new(TourneyConfig::paper(4));
        assert_eq!(t.arity(), 2);
        assert_eq!(t.storage().total_bits(), 2048);
    }
}
