//! The COBRA sub-component library (paper Section III-G).
//!
//! Each module implements one predictor sub-component against the
//! [`Component`](crate::Component) interface:
//!
//! * [`Hbim`] — bimodal counter tables with parameterized indexing (PC,
//!   global history, local history, or hashed combinations), covering BIM,
//!   GBIM/GHT, LBIM/LHT, GShare, and GSelect configurations.
//! * [`Btb`] — a large 2-cycle set-associative branch target buffer.
//! * [`MicroBtb`] — a small 1-cycle fully-associative uBTB that also
//!   provides a direction hint.
//! * [`Gtag`] — a single partially-tagged global-history table (the
//!   original BOOM "B2" backing predictor).
//! * [`Tage`] — a multi-table tagged geometric-history predictor following
//!   Seznec's algorithm.
//! * [`LoopPredictor`] — a loop-exit corrector with speculative iteration
//!   counters (updated at query time, repaired on mispredicts).
//! * [`Tourney`] — a tournament arbitration scheme choosing between two
//!   sub-predictors.
//! * [`Perceptron`] — an extension component (Section III-G notes
//!   perceptrons "may be implemented similarly").
//! * [`Ittage`] — an extension indirect-target predictor after Seznec's
//!   ITTAGE, giving polymorphic dispatch sites history-correlated targets.
//! * [`StatisticalCorrector`] — an extension component reverting
//!   low-confidence predictions, after TAGE-SC-L's corrector.

mod btb;
mod gtag;
mod hbim;
mod ittage;
mod loop_pred;
mod perceptron;
mod stat_corrector;
mod tage;
mod tourney;
mod ubtb;

pub use btb::{Btb, BtbConfig};
pub use gtag::{Gtag, GtagConfig};
pub use hbim::{Hbim, HbimConfig, IndexScheme};
pub use ittage::{Ittage, IttageConfig};
pub use loop_pred::{LoopConfig, LoopPredictor};
pub use perceptron::{Perceptron, PerceptronConfig};
pub use stat_corrector::{CorrectorConfig, StatisticalCorrector};
pub use tage::{Tage, TageConfig};
pub use tourney::{Tourney, TourneyConfig};
pub use ubtb::{MicroBtb, MicroBtbConfig};
