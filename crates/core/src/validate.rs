//! Interface-conformance checking for predictor sub-components.
//!
//! The paper's interface places contractual obligations on component
//! implementations that the type system cannot express: metadata must fit
//! its declared width, composition must pass inputs through before the
//! component responds, prediction must be repeatable after a repair, and
//! output widths must be preserved. [`check_component`] drives a component
//! through randomized stimulus and reports every violation — the COBRA
//! analogue of an RTL interface-assertion bench, and the tool that lets
//! sub-components be "designed and validated independently, before
//! evaluation of the complete predictor pipelines" (Section V-A).

use crate::iface::{Component, HistoryView, PredictQuery};
use crate::types::PredictionBundle;
use cobra_sim::{HistoryRegister, SplitMix64};
use std::fmt;

/// A single conformance violation found by [`check_component`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The component's latency is zero.
    ZeroLatency,
    /// Metadata exceeded the declared bit width.
    MetaOverflow {
        /// Declared width in bits.
        declared: u32,
        /// An offending metadata value.
        value: u64,
    },
    /// `compose` with no own response did not pass input 0 through.
    NotPassThrough,
    /// `compose` returned a bundle of the wrong width.
    WidthChanged {
        /// Width fed in.
        expected: u8,
        /// Width returned.
        found: u8,
    },
    /// `compose` was not pure (same arguments, different results).
    ComposeImpure,
    /// A `repair` with the predict-time metadata did not restore the
    /// component's prediction for the same query.
    RepairIneffective,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::ZeroLatency => write!(f, "component declares latency 0"),
            Violation::MetaOverflow { declared, value } => write!(
                f,
                "metadata value {value:#x} exceeds declared {declared} bits"
            ),
            Violation::NotPassThrough => {
                write!(f, "compose without a response must pass input 0 through")
            }
            Violation::WidthChanged { expected, found } => {
                write!(f, "compose changed bundle width from {expected} to {found}")
            }
            Violation::ComposeImpure => write!(f, "compose is not a pure function"),
            Violation::RepairIneffective => write!(
                f,
                "repair with predict-time metadata did not restore the prediction"
            ),
        }
    }
}

/// Options for [`check_component`].
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Fetch width to exercise.
    pub width: u8,
    /// Randomized queries to run.
    pub queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            width: 4,
            queries: 200,
            seed: 0xC0BA,
        }
    }
}

fn random_bundle(rng: &mut SplitMix64, width: u8) -> PredictionBundle {
    let mut b = PredictionBundle::new(width);
    for i in 0..width as usize {
        if rng.chance(0.4) {
            b.slot_mut(i).kind = Some(crate::types::BranchKind::Conditional);
            b.slot_mut(i).taken = Some(rng.chance(0.5));
            if rng.chance(0.7) {
                b.slot_mut(i)
                    .set_target(Some(0x1_0000 + rng.below(1 << 20) * 2));
            }
        }
    }
    b
}

/// Checks a component against the interface contract, returning every
/// violation found (empty = conformant).
///
/// # Examples
///
/// ```
/// use cobra_core::components::{Hbim, HbimConfig};
/// use cobra_core::validate::{check_component, CheckConfig};
///
/// let mut bim = Hbim::new(HbimConfig::bim(1024, 4));
/// assert!(check_component(&mut bim, CheckConfig::default()).is_empty());
/// ```
pub fn check_component(c: &mut dyn Component, cfg: CheckConfig) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut rng = SplitMix64::new(cfg.seed);

    if c.latency() == 0 {
        violations.push(Violation::ZeroLatency);
        return violations;
    }
    let uses_history = c.latency() >= 2;
    let declared_meta = c.meta_bits().min(64);
    let meta_mask = if declared_meta == 64 {
        u64::MAX
    } else {
        (1u64 << declared_meta) - 1
    };

    let mut ghist = HistoryRegister::new(64);
    let arity = c.arity().max(1);

    for step in 0..cfg.queries {
        let pc = 0x8000 + rng.below(1 << 14) * 16;
        let lhist = rng.next_u64() & 0xffff_ffff;
        let hist = HistoryView {
            ghist: &ghist,
            lhist,
            phist: 0,
        };
        let q = PredictQuery {
            cycle: step as u64,
            pc,
            width: cfg.width,
            hist: uses_history.then_some(hist),
        };
        let resp = c.predict(&q);

        // Metadata must fit the declared width.
        let inputs: Vec<PredictionBundle> = (0..arity)
            .map(|_| random_bundle(&mut rng, cfg.width))
            .collect();
        let meta = c.finalize_meta(&resp, &inputs);
        if meta.0 & !meta_mask != 0 && violations.len() < 8 {
            violations.push(Violation::MetaOverflow {
                declared: declared_meta,
                value: meta.0,
            });
        }

        // Pass-through before the component responds.
        let pre = c.compose(cfg.width, None, &inputs);
        if pre != inputs[0] && violations.len() < 8 {
            violations.push(Violation::NotPassThrough);
        }

        // Width preservation and purity of compose.
        let out1 = c.compose(cfg.width, Some(&resp), &inputs);
        let out2 = c.compose(cfg.width, Some(&resp), &inputs);
        if out1.width() != cfg.width && violations.len() < 8 {
            violations.push(Violation::WidthChanged {
                expected: cfg.width,
                found: out1.width(),
            });
        }
        if out1 != out2 && violations.len() < 8 {
            violations.push(Violation::ComposeImpure);
        }

        // Repair must restore the prediction for an identical re-query
        // (components without speculative query-time state satisfy this
        // trivially; the loop predictor relies on its metadata).
        let fire_like = crate::iface::FireEvent {
            pc,
            hist,
            meta,
            pred: &out1,
        };
        c.repair(&fire_like);
        let resp2 = c.predict(&q);
        if resp2.pred != resp.pred && violations.len() < 8 {
            violations.push(Violation::RepairIneffective);
        }
        // Undo the second speculative query too, leaving clean state.
        let meta2 = c.finalize_meta(&resp2, &inputs);
        c.repair(&crate::iface::FireEvent {
            pc,
            hist,
            meta: meta2,
            pred: &out1,
        });

        ghist.push(rng.chance(0.5));
        if violations.len() >= 8 {
            break;
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{
        Btb, BtbConfig, Gtag, GtagConfig, Hbim, HbimConfig, LoopConfig, LoopPredictor, MicroBtb,
        MicroBtbConfig, Perceptron, PerceptronConfig, Tage, TageConfig, Tourney, TourneyConfig,
    };
    use crate::iface::Response;
    use crate::types::{Meta, StorageReport};

    #[test]
    fn library_components_conform() {
        let cfg = CheckConfig::default();
        let mut components: Vec<Box<dyn Component>> = vec![
            Box::new(Hbim::new(HbimConfig::bim(1024, 4))),
            Box::new(Hbim::new(HbimConfig::gbim(1024, 8, 4))),
            Box::new(Hbim::new(HbimConfig::lbim(1024, 8, 4))),
            Box::new(Btb::new(BtbConfig::large(4))),
            Box::new(MicroBtb::new(MicroBtbConfig::small(4))),
            Box::new(Gtag::new(GtagConfig::b2(4))),
            Box::new(Tage::new(TageConfig::paper(4))),
            Box::new(LoopPredictor::new(LoopConfig::paper(4))),
            Box::new(Tourney::new(TourneyConfig::paper(4))),
            Box::new(Perceptron::new(PerceptronConfig::default_size(4))),
        ];
        for c in &mut components {
            let v = check_component(c.as_mut(), cfg);
            assert!(v.is_empty(), "{} violates: {:?}", c.kind(), v);
        }
    }

    /// A deliberately broken component: lies about its metadata width.
    struct MetaLiar;
    impl Component for MetaLiar {
        fn kind(&self) -> &'static str {
            "liar"
        }
        fn latency(&self) -> u8 {
            2
        }
        fn meta_bits(&self) -> u32 {
            4
        }
        fn storage(&self) -> StorageReport {
            StorageReport::new()
        }
        fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
            Response {
                pred: PredictionBundle::new(q.width),
                meta: Meta(0xdead_beef),
            }
        }
        fn save_state(&self, _w: &mut cobra_sim::StateWriter) {}
        fn load_state(
            &mut self,
            _r: &mut cobra_sim::StateReader<'_>,
        ) -> Result<(), cobra_sim::SnapError> {
            Ok(())
        }
    }

    #[test]
    fn catches_metadata_overflow() {
        let v = check_component(&mut MetaLiar, CheckConfig::default());
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::MetaOverflow { .. })));
    }

    /// A component that swallows its input instead of passing through.
    struct Swallower;
    impl Component for Swallower {
        fn kind(&self) -> &'static str {
            "swallower"
        }
        fn latency(&self) -> u8 {
            3
        }
        fn storage(&self) -> StorageReport {
            StorageReport::new()
        }
        fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
            Response {
                pred: PredictionBundle::new(q.width),
                meta: Meta::ZERO,
            }
        }
        fn compose(
            &self,
            width: u8,
            _own: Option<&Response>,
            _inputs: &[PredictionBundle],
        ) -> PredictionBundle {
            PredictionBundle::new(width)
        }
        fn save_state(&self, _w: &mut cobra_sim::StateWriter) {}
        fn load_state(
            &mut self,
            _r: &mut cobra_sim::StateReader<'_>,
        ) -> Result<(), cobra_sim::SnapError> {
            Ok(())
        }
    }

    #[test]
    fn catches_missing_pass_through() {
        let v = check_component(&mut Swallower, CheckConfig::default());
        assert!(v.contains(&Violation::NotPassThrough));
    }

    #[test]
    fn violation_display_messages() {
        assert!(Violation::ZeroLatency.to_string().contains("latency 0"));
        assert!(Violation::NotPassThrough.to_string().contains("pass"));
    }
}
