//! Common value types of the COBRA predictor interface.

use cobra_sim::{SnapError, SramSpec, StateReader, StateWriter};
use std::fmt;

/// Maximum supported fetch-packet width in prediction slots.
///
/// The evaluated BOOM configuration fetches 16 bytes per cycle of 16-bit RVC
/// instructions, i.e. up to 8 prediction slots.
pub const MAX_FETCH_WIDTH: usize = 8;

/// Granularity of a prediction slot in bytes (one RVC parcel).
pub const SLOT_BYTES: u64 = 2;

/// The kind of a control-flow instruction, as predicted (by a BTB) or
/// resolved (by the backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// A conditional branch: contributes a history bit; needs direction and
    /// target prediction.
    Conditional,
    /// An unconditional direct jump.
    Jump,
    /// A function call (jump-and-link): pushes the return address.
    Call,
    /// A function return: target comes from the return-address stack.
    Ret,
    /// An indirect jump through a register.
    Indirect,
}

impl BranchKind {
    /// `true` for kinds that always redirect control flow when executed.
    pub fn is_unconditional(self) -> bool {
        !matches!(self, BranchKind::Conditional)
    }

    /// Stable numeric code used by checkpoint serialization.
    pub fn code(self) -> u64 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Jump => 1,
            BranchKind::Call => 2,
            BranchKind::Ret => 3,
            BranchKind::Indirect => 4,
        }
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u64) -> Option<BranchKind> {
        Some(match code {
            0 => BranchKind::Conditional,
            1 => BranchKind::Jump,
            2 => BranchKind::Call,
            3 => BranchKind::Ret,
            4 => BranchKind::Indirect,
            _ => return None,
        })
    }

    /// Encodes an optional kind as one biased code (0 = `None`).
    pub fn encode_opt(kind: Option<BranchKind>) -> u64 {
        kind.map_or(0, |k| k.code() + 1)
    }

    /// Decodes a value written by [`encode_opt`](Self::encode_opt).
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::BadValue`] for codes outside the kind range.
    pub fn decode_opt(v: u64) -> Result<Option<BranchKind>, SnapError> {
        if v == 0 {
            return Ok(None);
        }
        BranchKind::from_code(v - 1)
            .map(Some)
            .ok_or(SnapError::BadValue {
                what: "branch kind",
                got: v,
            })
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "br",
            BranchKind::Jump => "jmp",
            BranchKind::Call => "call",
            BranchKind::Ret => "ret",
            BranchKind::Indirect => "ijmp",
        };
        f.write_str(s)
    }
}

/// A single slot's worth of (possibly partial) prediction.
///
/// Every field is optional because the interface explicitly supports partial
/// predictions (Section III-F of the paper): a BTB may provide only a
/// target, a direction table only a direction. A later component in the
/// topology overrides exactly the fields it provides and passes the rest
/// through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotPrediction {
    /// The kind of control-flow instruction believed to be at this slot
    /// (`None`: no CFI predicted here).
    pub kind: Option<BranchKind>,
    /// Predicted direction for a conditional branch.
    pub taken: Option<bool>,
    // The target is stored packed (validity bit + bits) rather than as an
    // `Option<u64>`: the option's discriminant would pad the struct from
    // 16 to 24 bytes, and `PredictionBundle` copies are the single largest
    // memory-traffic source on the packet hot path. `target_bits` is kept
    // normalized to 0 whenever `has_target` is false so the derived
    // equality matches option semantics.
    has_target: bool,
    target_bits: u64,
}

impl SlotPrediction {
    /// A slot with the given fields (the struct-literal form this type had
    /// when `target` was a public `Option<u64>` field).
    pub fn new(kind: Option<BranchKind>, taken: Option<bool>, target: Option<u64>) -> Self {
        Self {
            kind,
            taken,
            has_target: target.is_some(),
            target_bits: target.unwrap_or(0),
        }
    }

    /// Predicted target address, if this slot redirects.
    pub fn target(&self) -> Option<u64> {
        self.has_target.then_some(self.target_bits)
    }

    /// Sets (or clears) the predicted target address.
    pub fn set_target(&mut self, target: Option<u64>) {
        self.has_target = target.is_some();
        self.target_bits = target.unwrap_or(0);
    }

    /// `true` if no component has predicted anything for this slot.
    pub fn is_empty(&self) -> bool {
        self.kind.is_none() && self.taken.is_none() && !self.has_target
    }

    /// Overlays `other`'s provided fields on top of `self` (field-wise
    /// override, the interface's default composition rule).
    pub fn overridden_by(&self, other: &SlotPrediction) -> SlotPrediction {
        SlotPrediction {
            kind: other.kind.or(self.kind),
            taken: other.taken.or(self.taken),
            has_target: other.has_target || self.has_target,
            target_bits: if other.has_target {
                other.target_bits
            } else {
                self.target_bits
            },
        }
    }

    /// `true` if this slot, as currently predicted, redirects fetch:
    /// an unconditional CFI, or a conditional branch predicted taken.
    ///
    /// A redirect additionally requires a known target; see
    /// [`PredictionBundle::redirect`].
    pub fn wants_redirect(&self) -> bool {
        match self.kind {
            Some(BranchKind::Conditional) => self.taken == Some(true),
            Some(_) => true,
            None => false,
        }
    }

    /// Serializes the slot's fields into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(BranchKind::encode_opt(self.kind));
        w.write_u64(match self.taken {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.write_bool(self.has_target);
        w.write_u64(self.target_bits);
    }

    /// Decodes a slot written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let kind = BranchKind::decode_opt(r.read_u64("slot kind")?)?;
        let taken = match r.read_u64_capped("slot taken", 2)? {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        };
        let has_target = r.read_bool("slot has target")?;
        let target = r.read_u64("slot target")?;
        Ok(Self::new(kind, taken, has_target.then_some(target)))
    }
}

/// A vector of predictions covering one fetch packet — the `predict_out`
/// (and `predict_in`) type of the COBRA interface.
///
/// # Examples
///
/// ```
/// use cobra_core::{BranchKind, PredictionBundle};
///
/// let mut b = PredictionBundle::new(4);
/// b.slot_mut(1).kind = Some(BranchKind::Conditional);
/// b.slot_mut(1).taken = Some(true);
/// b.slot_mut(1).set_target(Some(0x8000_0000));
/// assert_eq!(b.redirect(), Some((1, 0x8000_0000)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictionBundle {
    width: u8,
    slots: [SlotPrediction; MAX_FETCH_WIDTH],
}

impl PredictionBundle {
    /// An empty (all-fallthrough) bundle of `width` slots.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_FETCH_WIDTH`].
    pub fn new(width: u8) -> Self {
        assert!(
            (1..=MAX_FETCH_WIDTH as u8).contains(&width),
            "bundle width out of range"
        );
        Self {
            width,
            slots: [SlotPrediction::default(); MAX_FETCH_WIDTH],
        }
    }

    /// Number of slots.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Borrows slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn slot(&self, i: usize) -> &SlotPrediction {
        assert!(i < self.width as usize, "slot index out of range");
        &self.slots[i]
    }

    /// Mutably borrows slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn slot_mut(&mut self, i: usize) -> &mut SlotPrediction {
        assert!(i < self.width as usize, "slot index out of range");
        &mut self.slots[i]
    }

    /// Iterates over the live slots.
    pub fn iter(&self) -> impl Iterator<Item = &SlotPrediction> {
        self.slots[..self.width as usize].iter()
    }

    /// Field-wise override of `self` by `other`, slot by slot.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn overridden_by(&self, other: &PredictionBundle) -> PredictionBundle {
        assert_eq!(self.width, other.width, "bundle width mismatch");
        let mut out = *self;
        for i in 0..self.width as usize {
            out.slots[i] = self.slots[i].overridden_by(&other.slots[i]);
        }
        out
    }

    /// The first slot that redirects fetch with a known target, as
    /// `(slot, target)`. Slots past the first redirect are architecturally
    /// invisible.
    ///
    /// A slot that *wants* to redirect but has no target (e.g. a taken
    /// direction prediction with a BTB miss) cannot steer fetch and is
    /// skipped — the packet falls through, to be corrected later; this is
    /// the behavioural consequence of an insufficient BTB.
    pub fn redirect(&self) -> Option<(usize, u64)> {
        self.iter().enumerate().find_map(|(i, s)| {
            if s.wants_redirect() {
                s.target().map(|t| (i, t))
            } else {
                None
            }
        })
    }

    /// The slot index after which nothing executes: the first slot that
    /// wants to redirect (with or without a known target).
    pub fn cutoff(&self) -> Option<usize> {
        self.iter()
            .enumerate()
            .find_map(|(i, s)| if s.wants_redirect() { Some(i) } else { None })
    }

    /// The global-history contribution of this bundle: one `bool` per slot
    /// predicted to hold a conditional branch, oldest (lowest slot) first,
    /// stopping after the first redirecting slot.
    ///
    /// Slots with a conditional branch but no direction prediction
    /// contribute `false` (the static not-taken assumption).
    pub fn history_bits(&self) -> impl Iterator<Item = bool> + '_ {
        let cut = self.cutoff().unwrap_or(self.width as usize - 1);
        self.iter()
            .take(cut + 1)
            .filter(|s| s.kind == Some(BranchKind::Conditional))
            .map(|s| s.taken.unwrap_or(false))
    }

    /// Predicted next fetch PC given this packet starts at `pc` and spans
    /// `fetch_bytes`.
    pub fn next_pc(&self, pc: u64, fetch_bytes: u64) -> u64 {
        match self.redirect() {
            Some((_, target)) => target,
            None => (pc & !(fetch_bytes - 1)) + fetch_bytes,
        }
    }

    /// Serializes the bundle (width plus every live slot).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(u64::from(self.width));
        for s in self.iter() {
            s.save_state(w);
        }
    }

    /// Decodes a bundle written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input or an out-of-range
    /// width.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let width = r.read_u64("bundle width")?;
        if !(1..=MAX_FETCH_WIDTH as u64).contains(&width) {
            return Err(SnapError::BadValue {
                what: "bundle width",
                got: width,
            });
        }
        let mut b = PredictionBundle::new(width as u8);
        for i in 0..width as usize {
            *b.slot_mut(i) = SlotPrediction::load_state(r)?;
        }
        Ok(b)
    }
}

/// A component's opaque per-prediction metadata word.
///
/// The interface guarantees this value, produced at predict time, is handed
/// back to the component at `fire`, `mispredict`, `repair`, and `update`
/// time (Section III-D). Components use it to avoid second read ports and to
/// restore corrupted local state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Meta(pub u64);

impl Meta {
    /// The all-zeros metadata word.
    pub const ZERO: Meta = Meta(0);
}

/// Lifetime access counts for one SRAM macro, consumed by the energy
/// model ("the energy cost of continuously reading predictor SRAMs is
/// significant" — paper Section VI-A, citing Parikh et al.).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessReport {
    /// Macro name (matches the storage report).
    pub name: String,
    /// Macro geometry.
    pub spec: SramSpec,
    /// Lifetime reads.
    pub reads: u64,
    /// Lifetime writes.
    pub writes: u64,
    /// Distinct rows written at least once — the touched-set
    /// utilization numerator interval telemetry reports against
    /// `spec.entries`.
    pub rows_touched: u64,
}

/// A component's declaration of its physical storage: SRAM macros plus
/// flip-flop bits, consumed by the area model and the Table I harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageReport {
    /// Named SRAM macros (structure name, geometry).
    pub srams: Vec<(String, SramSpec)>,
    /// Register (flip-flop) bits outside SRAM macros.
    pub flop_bits: u64,
}

impl StorageReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an SRAM macro to the report.
    pub fn add_sram(&mut self, name: impl Into<String>, spec: SramSpec) -> &mut Self {
        self.srams.push((name.into(), spec));
        self
    }

    /// Adds flip-flop bits to the report.
    pub fn add_flops(&mut self, bits: u64) -> &mut Self {
        self.flop_bits += bits;
        self
    }

    /// Total storage bits (SRAM + flops).
    pub fn total_bits(&self) -> u64 {
        self.srams.iter().map(|(_, s)| s.total_bits()).sum::<u64>() + self.flop_bits
    }

    /// Total storage in kilobytes.
    pub fn kilobytes(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &StorageReport) {
        self.srams.extend(other.srams.iter().cloned());
        self.flop_bits += other.flop_bits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken_slot(target: u64) -> SlotPrediction {
        SlotPrediction::new(Some(BranchKind::Conditional), Some(true), Some(target))
    }

    #[test]
    fn override_fills_missing_fields() {
        let base = SlotPrediction::new(Some(BranchKind::Conditional), Some(true), None);
        let btb = SlotPrediction::new(None, None, Some(0x100));
        let merged = base.overridden_by(&btb);
        assert_eq!(merged.taken, Some(true));
        assert_eq!(merged.target(), Some(0x100));
    }

    #[test]
    fn override_replaces_fields() {
        let base = taken_slot(0x100);
        let stronger = SlotPrediction::new(None, Some(false), None);
        let merged = base.overridden_by(&stronger);
        assert_eq!(merged.taken, Some(false));
        assert_eq!(merged.target(), Some(0x100));
    }

    #[test]
    fn redirect_finds_first_taken_with_target() {
        let mut b = PredictionBundle::new(4);
        *b.slot_mut(2) = taken_slot(0xabc0);
        *b.slot_mut(3) = taken_slot(0xdef0);
        assert_eq!(b.redirect(), Some((2, 0xabc0)));
    }

    #[test]
    fn taken_without_target_cannot_redirect() {
        let mut b = PredictionBundle::new(4);
        b.slot_mut(1).kind = Some(BranchKind::Conditional);
        b.slot_mut(1).taken = Some(true);
        assert_eq!(b.redirect(), None);
        assert_eq!(b.cutoff(), Some(1));
    }

    #[test]
    fn unconditional_jump_redirects_regardless_of_direction() {
        let mut b = PredictionBundle::new(4);
        b.slot_mut(0).kind = Some(BranchKind::Jump);
        b.slot_mut(0).set_target(Some(0x40));
        assert_eq!(b.redirect(), Some((0, 0x40)));
    }

    #[test]
    fn next_pc_fallthrough_aligns() {
        let b = PredictionBundle::new(8);
        assert_eq!(b.next_pc(0x1004, 16), 0x1010);
    }

    #[test]
    fn history_bits_stop_at_redirect() {
        let mut b = PredictionBundle::new(4);
        b.slot_mut(0).kind = Some(BranchKind::Conditional);
        b.slot_mut(0).taken = Some(false);
        *b.slot_mut(1) = taken_slot(0x99);
        b.slot_mut(2).kind = Some(BranchKind::Conditional);
        b.slot_mut(2).taken = Some(true); // past the redirect: invisible
        let bits: Vec<bool> = b.history_bits().collect();
        assert_eq!(bits, vec![false, true]);
    }

    #[test]
    fn history_bits_include_directionless_branch_as_not_taken() {
        let mut b = PredictionBundle::new(4);
        b.slot_mut(0).kind = Some(BranchKind::Conditional);
        let bits: Vec<bool> = b.history_bits().collect();
        assert_eq!(bits, vec![false]);
    }

    #[test]
    fn bundle_override_is_slotwise() {
        let mut base = PredictionBundle::new(2);
        *base.slot_mut(0) = taken_slot(0x10);
        let mut over = PredictionBundle::new(2);
        over.slot_mut(0).taken = Some(false);
        *over.slot_mut(1) = taken_slot(0x20);
        let merged = base.overridden_by(&over);
        assert_eq!(merged.slot(0).taken, Some(false));
        assert_eq!(merged.slot(0).target(), Some(0x10));
        assert_eq!(merged.redirect(), Some((1, 0x20)));
    }

    #[test]
    fn storage_report_totals() {
        use cobra_sim::{PortKind, SramSpec};
        let mut r = StorageReport::new();
        r.add_sram(
            "bht",
            SramSpec {
                entries: 1024,
                entry_bits: 2,
                ports: PortKind::DualPort,
                banks: 1,
            },
        )
        .add_flops(48);
        assert_eq!(r.total_bits(), 2048 + 48);
    }

    #[test]
    #[should_panic(expected = "slot index out of range")]
    fn slot_bounds_checked() {
        let b = PredictionBundle::new(2);
        let _ = b.slot(2);
    }
}
