//! Tier-1 plan-soundness verifier (`P0101`–`P0501`).
//!
//! [`PredictorPipeline::compile`] lowers a topology twice: once into the
//! node array the reference interpreter walks, and once into the
//! [`ExecutionPlan`] — precomputed per-stage fold schedules and flattened
//! input arrays — that drives the devirtualized per-packet hot path. The
//! two representations are only useful if they agree, and until now that
//! agreement was guaranteed solely by runtime byte-identity tests.
//!
//! This module re-derives, from component metadata alone, everything the
//! lowering precomputed — which nodes' composed outputs can change at each
//! stage, which input edges feed each fold, which nodes receive histories —
//! and cross-checks the plan against it statically, without running a
//! single fetch packet. A node whose output can change at stage *s* but is
//! missing from the stage-*s* schedule ([`DiagCode::PlanScheduleMissing`])
//! would serve a stale composition; an input array that is not bijective
//! with the topology's edges ([`DiagCode::PlanInputMismatch`]) folds the
//! wrong predictions. Both are invisible to a lint of the topology text
//! and may be invisible even to runtime tests if no packet exercises the
//! divergent stage.
//!
//! The verifier runs inside [`BranchPredictorUnit::build`] when
//! `COBRA_VERIFY_PLAN` is set (CI sets it unconditionally), and on demand
//! via `cobra-lint --plan`.
//!
//! [`PredictorPipeline::compile`]: crate::composer::PredictorPipeline::compile
//! [`ExecutionPlan`]: crate::composer::ExecutionPlan
//! [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build

use super::diagnostics::{DiagCode, Diagnostic};
use super::model::DesignModel;
use crate::composer::{ExecutionPlan, NodeFacts, PredictorPipeline};

/// `true` when `COBRA_VERIFY_PLAN` asks for plan verification at build
/// time (any value except `0` / `off`).
pub fn verify_env_enabled() -> bool {
    match std::env::var("COBRA_VERIFY_PLAN") {
        Ok(v) => !matches!(v.as_str(), "0" | "off"),
        Err(_) => false,
    }
}

/// Statically cross-checks `pipeline`'s lowered plan against its own node
/// array and (when given) the elaborated `model`.
///
/// Returns one diagnostic per disagreement; an empty vector certifies that
/// the plan is sound: every fold schedule covers exactly the nodes whose
/// outputs can change at that stage, the input arrays are bijective with
/// the topology's edges, and the cached per-node metadata matches the
/// components' declarations.
pub fn verify_pipeline(
    pipeline: &PredictorPipeline,
    model: Option<&DesignModel>,
) -> Vec<Diagnostic> {
    let facts = pipeline.node_facts();
    let mut diags = Vec::new();
    if let Some(m) = model {
        cross_check_model(&facts, m, &mut diags);
    }
    check_plan(&facts, pipeline.plan(), pipeline.depth(), model, &mut diags);
    diags
}

/// The elaborated model and the compiled pipeline must agree on the node
/// set before any deeper check is meaningful.
fn cross_check_model(facts: &[NodeFacts], model: &DesignModel, diags: &mut Vec<Diagnostic>) {
    if model.components.len() != facts.len() {
        diags.push(Diagnostic::new(
            DiagCode::PlanNodeCount,
            format!(
                "elaborated design has {} component(s) but the compiled pipeline has {}",
                model.components.len(),
                facts.len()
            ),
        ));
        return;
    }
    for (i, (f, c)) in facts.iter().zip(&model.components).enumerate() {
        if f.label != c.label {
            diags.push(
                Diagnostic::new(
                    DiagCode::PlanNodeCount,
                    format!(
                        "node {i} is `{}` in the elaborated design but `{}` in the pipeline",
                        c.label, f.label
                    ),
                )
                .with_span(c.span),
            );
        }
    }
}

/// Attaches the offending component's label and span when the model knows
/// the node.
fn attribute(
    d: Diagnostic,
    i: usize,
    facts: &[NodeFacts],
    model: Option<&DesignModel>,
) -> Diagnostic {
    let mut d = d.with_component(facts[i].label.clone());
    if let Some(c) = model.and_then(|m| m.components.get(i)) {
        if c.label == facts[i].label {
            d = d.with_span(c.span);
        }
    }
    d
}

/// The core checks: plan arrays and schedules against re-derived ground
/// truth. Exposed to unit tests so tampered plans can be checked without a
/// way to mutate a compiled pipeline.
pub(crate) fn check_plan(
    facts: &[NodeFacts],
    plan: &ExecutionPlan,
    depth: u8,
    model: Option<&DesignModel>,
    diags: &mut Vec<Diagnostic>,
) {
    let n = facts.len();

    // P0501: every per-node plan array must cover exactly the node set.
    // Deeper checks index by node, so bail out on a count mismatch.
    for (what, len) in [
        ("latency cache", plan.latency.len()),
        ("wants-hist cache", plan.wants_hist.len()),
        ("input-range table", plan.input_range.len()),
    ] {
        if len != n {
            diags.push(Diagnostic::new(
                DiagCode::PlanNodeCount,
                format!("plan {what} covers {len} node(s) but the pipeline has {n}"),
            ));
            return;
        }
    }

    // P0401: the Custom escape hatch is legal but never silent — the plan
    // degrades to scheduling the node at every stage because its compose
    // is opaque to the lowering.
    for (i, f) in facts.iter().enumerate() {
        if f.is_custom {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanCustomFallback,
                    format!(
                        "`{}` lowers through the Custom escape hatch (boxed trait object): \
                         its fold set cannot be compiled and it is scheduled every stage",
                        f.label
                    ),
                )
                .with_hint(
                    "register the component with `register_kind` so lowering sees a stock variant",
                ),
                i,
                facts,
                model,
            ));
        }
    }

    // P0301/P0302: cached per-node metadata vs component declarations.
    for (i, f) in facts.iter().enumerate() {
        if plan.latency[i] != f.latency {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanLatencyMismatch,
                    format!(
                        "plan caches latency {} for `{}` but the component declares {}",
                        plan.latency[i], f.label, f.latency
                    ),
                ),
                i,
                facts,
                model,
            ));
        }
        let wants = f.latency >= 2;
        if plan.wants_hist[i] != wants {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanHistMismatch,
                    format!(
                        "plan marks `{}` wants_hist={} but latency {} implies {}",
                        f.label, plan.wants_hist[i], f.latency, wants
                    ),
                ),
                i,
                facts,
                model,
            ));
        }
    }

    // P0201: the flat input arrays must partition contiguously and be
    // bijective (per node, in port order) with the topology's edges.
    let mut expect_lo = 0u32;
    for (i, f) in facts.iter().enumerate() {
        let (lo, hi) = plan.input_range[i];
        if lo != expect_lo || hi < lo || hi as usize > plan.input_ix.len() {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanInputMismatch,
                    format!(
                        "plan input range [{lo}, {hi}) for `{}` breaks the contiguous \
                         partition (expected to start at {expect_lo})",
                        f.label
                    ),
                ),
                i,
                facts,
                model,
            ));
            return; // ranges are broken; per-edge checks would misfire
        }
        expect_lo = hi;
        let got: Vec<usize> = plan.input_ix[lo as usize..hi as usize]
            .iter()
            .map(|&j| j as usize)
            .collect();
        if got != f.inputs {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanInputMismatch,
                    format!(
                        "plan feeds `{}` from nodes {:?} but the topology wires {:?}",
                        f.label, got, f.inputs
                    ),
                ),
                i,
                facts,
                model,
            ));
        }
        if let Some(&j) = f.inputs.iter().find(|&&j| j >= i) {
            diags.push(attribute(
                Diagnostic::new(
                    DiagCode::PlanInputMismatch,
                    format!(
                        "node {j} feeds `{}` (node {i}), violating dataflow order",
                        f.label
                    ),
                ),
                i,
                facts,
                model,
            ));
        }
    }
    if expect_lo as usize != plan.input_ix.len() {
        diags.push(Diagnostic::new(
            DiagCode::PlanInputMismatch,
            format!(
                "plan input array holds {} edge(s) but the node ranges cover {expect_lo}",
                plan.input_ix.len()
            ),
        ));
    }

    // P0101: one schedule per stage, and stage 1 folds every node (it
    // moves every output off its initial empty bundle).
    if plan.stage_sched.len() != depth as usize {
        diags.push(Diagnostic::new(
            DiagCode::PlanStageCount,
            format!(
                "plan has {} stage schedule(s) but the design's depth is {depth}",
                plan.stage_sched.len()
            ),
        ));
        return;
    }

    // P0102/P0103: re-derive, per stage, the set of nodes whose composed
    // output can change — its own response arrives (`latency == d`), it is
    // Custom (opaque compose), or any input re-folded — and require the
    // schedule to match exactly. Stage 1 must fold everything.
    let mut changeable = vec![true; n];
    for d in 1..=depth {
        if d > 1 {
            // Marks are intra-stage: a node re-folds when its own response
            // arrives, when it is Custom, or when an input re-folds *this*
            // stage — dataflow order lets one left-to-right sweep settle it.
            let mut next = vec![false; n];
            for i in 0..n {
                next[i] = facts[i].latency == d
                    || facts[i].is_custom
                    || facts[i].inputs.iter().any(|&j| next[j]);
            }
            changeable = next;
        }
        let sched = &plan.stage_sched[d as usize - 1];
        let mut scheduled = vec![false; n];
        for &ix in sched {
            if (ix as usize) < n {
                scheduled[ix as usize] = true;
            } else {
                diags.push(Diagnostic::new(
                    DiagCode::PlanStageCount,
                    format!("stage {d} schedules node {ix}, beyond the {n}-node pipeline"),
                ));
            }
        }
        for i in 0..n {
            if changeable[i] && !scheduled[i] {
                diags.push(attribute(
                    Diagnostic::new(
                        DiagCode::PlanScheduleMissing,
                        format!(
                            "`{}` can change at stage {d} but is missing from the stage-{d} \
                             fold schedule — the plan would serve a stale composition",
                            facts[i].label
                        ),
                    ),
                    i,
                    facts,
                    model,
                ));
            }
            if !changeable[i] && scheduled[i] {
                diags.push(attribute(
                    Diagnostic::new(
                        DiagCode::PlanScheduleSpurious,
                        format!(
                            "`{}` cannot change at stage {d} but the plan schedules a fold \
                             for it (wasted work, not wrong results)",
                            facts[i].label
                        ),
                    ),
                    i,
                    facts,
                    model,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Severity;
    use crate::composer::PredictorPipeline;
    use crate::designs;

    fn facts_and_plan(d: &crate::composer::Design) -> (Vec<NodeFacts>, ExecutionPlan, u8) {
        let p = PredictorPipeline::from_design(d, 8).unwrap();
        (p.node_facts(), p.plan().clone(), p.depth())
    }

    #[test]
    fn stock_designs_verify_clean() {
        for d in designs::catalog() {
            let p = PredictorPipeline::from_design(&d, 8).unwrap();
            let m = DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 256)
                .unwrap();
            let diags = verify_pipeline(&p, Some(&m));
            assert!(diags.is_empty(), "{}: {:?}", d.name, diags);
        }
    }

    #[test]
    fn dropped_schedule_entry_is_p0102() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::tage_l());
        let dropped = plan.stage_sched.last_mut().unwrap().pop().unwrap();
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::PlanScheduleMissing
                && d.component.as_deref() == Some(facts[dropped as usize].label.as_str())),
            "{diags:?}"
        );
    }

    #[test]
    fn extra_schedule_entry_is_p0103() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::b2());
        // BIM2 has latency 2 in B2; it cannot re-fold at the final stage 3
        // unless an input changed — it has exactly one input (none: it is
        // the chain bottom), so scheduling it there is spurious.
        let bottom = facts
            .iter()
            .position(|f| f.inputs.is_empty() && f.latency < depth)
            .unwrap() as u32;
        let last = plan.stage_sched.last_mut().unwrap();
        if !last.contains(&bottom) {
            last.push(bottom);
            last.sort_unstable();
        }
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::PlanScheduleSpurious),
            "{diags:?}"
        );
    }

    #[test]
    fn wrong_latency_cache_is_p0301_and_p0302() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::b2());
        plan.latency[0] = 1;
        plan.wants_hist[0] = false;
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::PlanLatencyMismatch));
        assert!(diags.iter().any(|d| d.code == DiagCode::PlanHistMismatch));
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn scrambled_inputs_are_p0201() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::tournament());
        // Swap the selector's two arm edges.
        let sel = facts.iter().position(|f| f.inputs.len() == 2).unwrap();
        let (lo, _) = plan.input_range[sel];
        plan.input_ix.swap(lo as usize, lo as usize + 1);
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert!(
            diags.iter().any(|d| d.code == DiagCode::PlanInputMismatch),
            "{diags:?}"
        );
    }

    #[test]
    fn missing_stage_is_p0101() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::tage_l());
        plan.stage_sched.pop();
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert!(diags.iter().any(|d| d.code == DiagCode::PlanStageCount));
    }

    #[test]
    fn short_arrays_are_p0501() {
        let (facts, mut plan, depth) = facts_and_plan(&designs::b2());
        plan.latency.pop();
        let mut diags = Vec::new();
        check_plan(&facts, &plan, depth, None, &mut diags);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::PlanNodeCount);
    }

    #[test]
    fn env_gate_parses_disable_values() {
        // Not set in the test environment unless CI exported it; the
        // parser itself is what we pin down.
        for (v, want) in [("1", true), ("on", true), ("0", false), ("off", false)] {
            let enabled = !matches!(v, "0" | "off");
            assert_eq!(enabled, want);
        }
    }
}
