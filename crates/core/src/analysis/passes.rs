//! The per-topology static analysis passes (L1–L5, plus the L6 dataflow
//! passes from [`super::dataflow`]).
//!
//! Each pass is a pure function from a [`DesignModel`] (plus the
//! [`AnalysisConfig`]) to diagnostics. Pass order follows the issue's
//! numbering; [`run_all`] runs structural checks first so later passes can
//! assume per-component facts are sane.

use super::diagnostics::{DiagCode, Diagnostic};
use super::model::{ComponentInfo, DesignModel};
use super::AnalysisConfig;
use crate::composer::MAX_DEPTH;

/// Runs every pass over `model` and returns the combined diagnostics,
/// resolution findings first.
pub fn run_all(model: &DesignModel, cfg: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = model.resolution.clone();
    out.extend(structure(model));
    out.extend(latency(model));
    out.extend(metadata(model, cfg));
    out.extend(storage(model, cfg));
    out.extend(reachability(model));
    out.extend(super::dataflow::history_inference(model));
    out.extend(super::dataflow::field_flow(model));
    out.extend(super::dataflow::interference(model));
    out
}

/// L5 — structural checks: duplicate names, arity mismatches, invalid
/// latency declarations, and history-provider requirements.
pub fn structure(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Duplicate component names: event attribution and metadata accounting
    // key off the label, so a repeated name is almost certainly a mistake.
    for (i, c) in model.components.iter().enumerate() {
        if let Some(first) = model.components[..i].iter().find(|p| p.label == c.label) {
            out.push(
                Diagnostic::new(
                    DiagCode::DuplicateComponent,
                    format!(
                        "component `{}` appears more than once (first at {})",
                        c.label, first.span
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span)
                .with_hint("register the second instance under a distinct name"),
            );
        }
    }
    for c in &model.components {
        if (c.arity >= 2 && c.declared_inputs != c.arity) || (c.arity <= 1 && c.declared_inputs > 1)
        {
            out.push(
                Diagnostic::new(
                    DiagCode::ArityMismatch,
                    format!(
                        "`{}` declares arity {} but the topology supplies {} input(s)",
                        c.label, c.arity, c.declared_inputs
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span)
                .with_hint(if c.arity >= 2 {
                    format!("give `{}` exactly {} arbitration arms", c.label, c.arity)
                } else {
                    format!(
                        "`{}` is a chain component; it takes at most one input",
                        c.label
                    )
                }),
            );
        }
        if c.latency == 0 || c.latency > MAX_DEPTH {
            out.push(
                Diagnostic::new(
                    DiagCode::InvalidLatency,
                    format!(
                        "`{}` declares latency {} (must be 1..={MAX_DEPTH})",
                        c.label, c.latency
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span),
            );
        }
        if c.local_history_bits > 64 {
            out.push(
                Diagnostic::new(
                    DiagCode::LocalHistoryTooWide,
                    format!(
                        "`{}` wants {} local-history bits; the provider stores at most 64",
                        c.label, c.local_history_bits
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span)
                .with_hint("reduce the component's local-history length to 64 bits or fewer"),
            );
        } else if c.local_history_bits > 0 && model.lhist_entries == 0 {
            out.push(
                Diagnostic::new(
                    DiagCode::LocalHistoryDisabled,
                    format!(
                        "`{}` wants {} local-history bits but the design declares no \
                         local-history entries; the provider degenerates to a single entry",
                        c.label, c.local_history_bits
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span)
                .with_hint("set the design's `lhist_entries` to a power of two (e.g. 256)"),
            );
        }
        if c.required_ghist_bits > model.ghist_bits {
            out.push(
                Diagnostic::new(
                    DiagCode::GlobalHistoryShort,
                    format!(
                        "`{}` reads {} global-history bits but the design provides {}; \
                         the longest histories will be truncated",
                        c.label, c.required_ghist_bits, model.ghist_bits
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span)
                .with_hint(format!(
                    "raise the design's `ghist_bits` to at least {}",
                    c.required_ghist_bits
                )),
            );
        }
    }
    out
}

/// L1 — latency monotonicity and override-window feasibility.
///
/// In `a > b`, `a` refines `b`'s prediction later in the pipeline; if `a`
/// responds *earlier* than `b` the refinement contract runs backwards
/// (C0201). A selector finalizes its choice at its own latency, so an arm
/// containing a slower component would be arbitrated before it responds
/// (C0202).
pub fn latency(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in &model.components {
        if a.is_selector {
            for &arm in &a.inputs {
                for &i in &model.subtree(arm) {
                    let c = &model.components[i];
                    if c.latency > a.latency {
                        out.push(
                            Diagnostic::new(
                                DiagCode::SelectorBeforeArm,
                                format!(
                                    "selector `{}` (latency {}) arbitrates before arm \
                                     component `{}` (latency {}) responds",
                                    a.label, a.latency, c.label, c.latency
                                ),
                            )
                            .with_component(&a.label)
                            .with_span(c.span)
                            .with_hint(format!(
                                "raise `{}`'s latency to at least {}, or use a faster arm",
                                a.label, c.latency
                            )),
                        );
                    }
                }
            }
        } else if let [below] = a.inputs[..] {
            let b = &model.components[below];
            if a.latency < b.latency {
                out.push(
                    Diagnostic::new(
                        DiagCode::LatencyInversion,
                        format!(
                            "`{}` (latency {}) overrides `{}` (latency {}): the overriding \
                             component must not respond earlier than the one it overrides",
                            a.label, a.latency, b.label, b.latency
                        ),
                    )
                    .with_component(&a.label)
                    .with_span(a.span)
                    .with_hint(format!(
                        "swap the order to `{} > {}`, or retime `{}`",
                        b.label, a.label, a.label
                    )),
                );
            }
        }
    }
    out
}

/// L2 — metadata width budget, with per-component attribution.
pub fn metadata(model: &DesignModel, cfg: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in &model.components {
        if c.meta_bits > 64 {
            out.push(
                Diagnostic::new(
                    DiagCode::MetaTooWide,
                    format!(
                        "`{}` declares {} metadata bits; the history file stores at most 64 \
                         per component",
                        c.label, c.meta_bits
                    ),
                )
                .with_component(&c.label)
                .with_span(c.span),
            );
        }
    }
    let total = model.meta_bits_total();
    if total > cfg.meta_budget_bits {
        let mut contributors: Vec<&ComponentInfo> = model.components.iter().collect();
        contributors.sort_by(|x, y| y.meta_bits.cmp(&x.meta_bits).then(x.label.cmp(&y.label)));
        let breakdown = contributors
            .iter()
            .map(|c| format!("{} {}b", c.label, c.meta_bits))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(
            Diagnostic::new(
                DiagCode::MetaBudgetExceeded,
                format!(
                    "total metadata is {total} bits against a {}-bit history-file budget \
                     ({breakdown})",
                    cfg.meta_budget_bits
                ),
            )
            .with_hint("shrink the widest contributors or raise the budget (--meta-budget)"),
        );
    }
    out
}

/// L3 — storage accounting per component and total, cross-checked against
/// reference figures when the config supplies them.
pub fn storage(model: &DesignModel, cfg: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let total_kb = model.component_storage_bits() as f64 / 8192.0;
    let mut parts: Vec<&ComponentInfo> = model.components.iter().collect();
    parts.sort_by(|x, y| {
        y.storage_bits
            .cmp(&x.storage_bits)
            .then(x.label.cmp(&y.label))
    });
    let breakdown = parts
        .iter()
        .map(|c| format!("{} {:.2} KB", c.label, c.storage_bits as f64 / 8192.0))
        .collect::<Vec<_>>()
        .join(", ");
    let paper = match cfg.paper_kb {
        Some(p) if p > 0.0 => {
            format!(
                "; paper Table 1 lists {:.1} KB ({:+.0}%)",
                p,
                (total_kb / p - 1.0) * 100.0
            )
        }
        _ => String::new(),
    };
    out.push(Diagnostic::new(
        DiagCode::StorageSummary,
        format!("component storage {total_kb:.2} KB ({breakdown}){paper}"),
    ));
    if let Some(reference) = cfg.reference_kb {
        if reference > 0.0 {
            let drift = (total_kb / reference - 1.0).abs();
            if drift > cfg.storage_tolerance {
                out.push(
                    Diagnostic::new(
                        DiagCode::StorageDrift,
                        format!(
                            "component storage {total_kb:.2} KB deviates {:.0}% from the \
                             reference accounting of {reference:.2} KB (tolerance {:.0}%)",
                            drift * 100.0,
                            cfg.storage_tolerance * 100.0
                        ),
                    )
                    .with_hint(
                        "component table sizes changed; update the reference in \
                         crates/bench/src/reference.rs if this is intentional",
                    ),
                );
            }
        }
    }
    out
}

/// L4 — reachability/shadowing: components whose predictions can never
/// survive composition.
pub fn reachability(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for a in &model.components {
        if a.is_selector {
            continue;
        }
        let [below] = a.inputs[..] else { continue };
        let b = &model.components[below];
        // `b`'s output is only acted on at stages where `a` has not yet
        // responded (a pass-through window) or where `a` declines to
        // provide a field. If `a` responds no later than `b` AND always
        // provides every field `b` may produce, `b` is dead weight.
        let shadowed = a.latency <= b.latency
            && !b.profile.may.is_empty()
            && a.profile.always.contains(b.profile.may);
        if shadowed {
            out.push(
                Diagnostic::new(
                    DiagCode::ShadowedComponent,
                    format!(
                        "`{}` can never contribute: `{}` responds at stage {} (≤ {}) and \
                         always provides {:?}",
                        b.label,
                        a.label,
                        a.latency,
                        b.latency,
                        a.profile.always.names()
                    ),
                )
                .with_component(&b.label)
                .with_span(b.span)
                .with_hint(format!(
                    "remove `{}` or reorder it above `{}`",
                    b.label, a.label
                )),
            );
            continue;
        }
        let overlap = a.profile.always.intersect(b.profile.may);
        if a.latency == b.latency && !overlap.is_empty() {
            out.push(
                Diagnostic::new(
                    DiagCode::ZeroOverrideWindow,
                    format!(
                        "`{}` and `{}` respond at the same stage ({}), and `{}` always \
                         overrides {:?}: those fields of `{}` are never used",
                        a.label,
                        b.label,
                        a.latency,
                        a.label,
                        overlap.names(),
                        b.label
                    ),
                )
                .with_component(&b.label)
                .with_span(b.span)
                .with_hint(format!(
                    "give `{}` a smaller latency than `{}` to open an override window",
                    b.label, a.label
                )),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    fn model_for(topo: &str, ghist: u32, lhist: u64) -> DesignModel {
        // A registry containing every stock component name.
        let reg = designs::stock_registry();
        DesignModel::build("test", topo, &reg, 8, ghist, lhist).unwrap()
    }

    #[test]
    fn latency_inversion_detected() {
        let m = model_for("UBTB1 > BIM2", 16, 0);
        let diags = latency(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::LatencyInversion);
        assert_eq!(diags[0].component.as_deref(), Some("UBTB1"));
        // Span points at the overrider.
        assert_eq!(diags[0].span, Some(crate::error::Span::new(0, 5)));
    }

    #[test]
    fn selector_before_arm_detected() {
        // TOURNEY3 arbitrates at stage 3; a TAGE3>BIM2 arm is fine, but an
        // arm containing a (hypothetically) slower component is not. Use
        // TAGE3 with the 2-deep chain and a selector that's too fast — the
        // stock registry has no fast selector, so check the clean case and
        // the subtree walk instead.
        let m = model_for("TOURNEY3 > [TAGE3 > BIM2, LBIM2]", 64, 256);
        assert!(latency(&m).is_empty(), "equal-latency arm is legal");
    }

    #[test]
    fn duplicate_names_flagged() {
        let m = model_for("BIM2 > BIM2", 0, 0);
        let diags = structure(&m);
        assert!(diags.iter().any(|d| d.code == DiagCode::DuplicateComponent));
    }

    #[test]
    fn short_global_history_warns() {
        let m = model_for("TAGE3 > BIM2", 16, 0);
        let diags = structure(&m);
        let d = diags
            .iter()
            .find(|d| d.code == DiagCode::GlobalHistoryShort)
            .expect("TAGE reads 64 bits, design provides 16");
        assert_eq!(d.component.as_deref(), Some("TAGE3"));
    }

    #[test]
    fn missing_local_history_warns() {
        let m = model_for("LBIM2 > BIM2", 16, 0);
        let diags = structure(&m);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagCode::LocalHistoryDisabled));
        let ok = model_for("LBIM2 > BIM2", 16, 256);
        assert!(structure(&ok)
            .iter()
            .all(|d| d.code != DiagCode::LocalHistoryDisabled));
    }

    #[test]
    fn full_shadow_detected() {
        // BIM2 always provides `taken` at stage 2; GBIM2 may only provide
        // `taken` and responds at the same stage — fully shadowed.
        let m = model_for("BIM2 > GBIM2", 16, 0);
        let diags = reachability(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::ShadowedComponent);
        assert_eq!(diags[0].component.as_deref(), Some("GBIM2"));
    }

    #[test]
    fn zero_window_needs_field_overlap() {
        // LOOP3 > TAGE3: equal latency but LOOP's `always` is empty — a
        // conditional overrider leaves TAGE reachable. No warning.
        let m = model_for("LOOP3 > TAGE3 > BIM2", 64, 0);
        assert!(reachability(&m).is_empty());
    }

    #[test]
    fn meta_budget_attribution() {
        let m = model_for("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1", 64, 0);
        let cfg = AnalysisConfig {
            meta_budget_bits: 100,
            ..AnalysisConfig::default()
        };
        let diags = metadata(&m, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::MetaBudgetExceeded);
        assert!(
            diags[0].message.contains("TAGE3 58b"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn storage_drift_uses_tolerance() {
        let m = model_for("BIM2 > UBTB1", 0, 0);
        let actual = m.component_storage_bits() as f64 / 8192.0;
        let near = AnalysisConfig {
            reference_kb: Some(actual * 1.1),
            ..AnalysisConfig::default()
        };
        assert!(storage(&m, &near)
            .iter()
            .all(|d| d.code != DiagCode::StorageDrift));
        let far = AnalysisConfig {
            reference_kb: Some(actual * 2.0),
            ..AnalysisConfig::default()
        };
        assert!(storage(&m, &far)
            .iter()
            .any(|d| d.code == DiagCode::StorageDrift));
    }
}
