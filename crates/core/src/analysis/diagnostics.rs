//! Structured diagnostics for the static design analyzer.
//!
//! Every finding is a [`Diagnostic`] with a stable [`DiagCode`], a
//! [`Severity`], a message, and optionally the offending component label, a
//! [`Span`] into the topology text, and a fix hint. Diagnostics render both
//! human-readable (with a caret line under the topology) and as JSON.

use crate::error::Span;
use std::fmt;

/// Diagnostic severity.
///
/// `Note`-level diagnostics are informational (storage summaries and the
/// like) and are never promoted by `--deny warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational output; never fails a lint run.
    Note,
    /// A suspicious construction that still builds and simulates.
    Warning,
    /// A defect that makes the design unbuildable or meaningless;
    /// [`BranchPredictorUnit::build`](crate::composer::BranchPredictorUnit::build)
    /// refuses designs with error-level diagnostics.
    Error,
}

impl Severity {
    /// Lowercase name, as rendered in diagnostics (`error[C0201]: …`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Stable diagnostic codes emitted by the analyzer.
///
/// Codes are grouped by pass: `C00xx` parse, `C01xx` structural (L5),
/// `C02xx` latency (L1), `C03xx` metadata (L2), `C04xx` storage (L3),
/// `C05xx` reachability/shadowing (L4), `C06xx` history/field dataflow,
/// `C07xx` index interference. `P0xxx` codes come from the plan-soundness
/// verifier, which cross-checks the lowered [`ExecutionPlan`] against the
/// elaborated design. The code strings are part of the tool's public
/// contract: scripts may match on them, so they never change meaning.
///
/// [`ExecutionPlan`]: crate::composer::ExecutionPlan
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagCode {
    /// `C0001`: the topology text failed to parse.
    ParseError,
    /// `C0101`: a component name has no registry entry.
    UnknownComponent,
    /// `C0102`: the same component name appears more than once.
    DuplicateComponent,
    /// `C0103`: a component's declared arity does not match the inputs the
    /// topology supplies.
    ArityMismatch,
    /// `C0104`: a component declares a latency of zero or beyond the
    /// supported pipeline depth.
    InvalidLatency,
    /// `C0106`: a component wants local history but the design supplies no
    /// (or a degenerate) local-history table.
    LocalHistoryDisabled,
    /// `C0107`: a component reads more global-history bits than the
    /// design's global history register holds.
    GlobalHistoryShort,
    /// `C0108`: a component wants a local history wider than the provider
    /// supports (64 bits).
    LocalHistoryTooWide,
    /// `C0201`: an overriding component responds *earlier* than the
    /// component it overrides (latency inversion — the "refinement over
    /// time" contract runs backwards).
    LatencyInversion,
    /// `C0202`: an arbitration selector responds before some component in
    /// one of its arms, so it selects among predictions that do not exist
    /// yet.
    SelectorBeforeArm,
    /// `C0301`: a component declares more than 64 metadata bits.
    MetaTooWide,
    /// `C0302`: the summed per-component metadata exceeds the configured
    /// history-file budget.
    MetaBudgetExceeded,
    /// `C0401`: total storage drifts from the reference accounting beyond
    /// tolerance.
    StorageDrift,
    /// `C0402`: the storage summary (per-component attribution and the
    /// paper-reference delta).
    StorageSummary,
    /// `C0501`: a component is fully shadowed — everything it may predict
    /// is always provided, at an equal or earlier stage, by the component
    /// overriding it.
    ShadowedComponent,
    /// `C0502`: an override window of zero width — overrider and overridden
    /// respond at the same stage and the overrider unconditionally
    /// populates fields the overridden may produce.
    ZeroOverrideWindow,
    /// `C0601`: the design's global history register is more than twice as
    /// wide as any component's demand — over-provisioned speculative state
    /// that every checkpoint and repair must carry for nothing.
    GhistOverProvisioned,
    /// `C0602`: no component in the composition can ever populate a
    /// prediction field — the composed `may` union of the final output
    /// misses it, so downstream consumers read a constant.
    FieldNeverProduced,
    /// `C0701`: a history-indexed table keeps too few PC bits to separate
    /// branches that share history — distinct static branches alias onto
    /// the same rows on correlated streams (the paper's Tournament/`xz`
    /// Section V-B diagnosis, derived statically).
    IndexAliasing,
    /// `C0702`: two components share SRAM geometry (equal set count) and
    /// draw on the same history sources with identical widths, so their
    /// index streams are correlated and they mistrain together.
    CorrelatedIndexPair,
    /// `P0101`: the lowered plan's stage count or stage-1 schedule does
    /// not match the elaborated design.
    PlanStageCount,
    /// `P0102`: a node whose output can change at stage *s* is missing
    /// from the stage-*s* fold schedule — the plan would serve a stale
    /// composition.
    PlanScheduleMissing,
    /// `P0103`: a node is scheduled at a stage where its output cannot
    /// change — wasted folds, not wrong results.
    PlanScheduleSpurious,
    /// `P0201`: the plan's flat input-index arrays are not bijective with
    /// the topology's edges (wrong inputs, wrong order, or a broken
    /// contiguous partition).
    PlanInputMismatch,
    /// `P0301`: a cached per-node latency in the plan disagrees with the
    /// component's declared latency.
    PlanLatencyMismatch,
    /// `P0302`: a node's cached `wants_hist` flag contradicts the
    /// history-timing rule (`latency ≥ 2`).
    PlanHistMismatch,
    /// `P0401`: lowering took the `Custom` escape hatch for a component,
    /// so the plan schedules it conservatively every stage instead of
    /// compiling its fold set.
    PlanCustomFallback,
    /// `P0501`: the plan's node count or node identity disagrees with the
    /// elaborated design; deeper plan checks are skipped.
    PlanNodeCount,
}

impl DiagCode {
    /// The stable code string, e.g. `"C0201"`.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::ParseError => "C0001",
            DiagCode::UnknownComponent => "C0101",
            DiagCode::DuplicateComponent => "C0102",
            DiagCode::ArityMismatch => "C0103",
            DiagCode::InvalidLatency => "C0104",
            DiagCode::LocalHistoryDisabled => "C0106",
            DiagCode::GlobalHistoryShort => "C0107",
            DiagCode::LocalHistoryTooWide => "C0108",
            DiagCode::LatencyInversion => "C0201",
            DiagCode::SelectorBeforeArm => "C0202",
            DiagCode::MetaTooWide => "C0301",
            DiagCode::MetaBudgetExceeded => "C0302",
            DiagCode::StorageDrift => "C0401",
            DiagCode::StorageSummary => "C0402",
            DiagCode::ShadowedComponent => "C0501",
            DiagCode::ZeroOverrideWindow => "C0502",
            DiagCode::GhistOverProvisioned => "C0601",
            DiagCode::FieldNeverProduced => "C0602",
            DiagCode::IndexAliasing => "C0701",
            DiagCode::CorrelatedIndexPair => "C0702",
            DiagCode::PlanStageCount => "P0101",
            DiagCode::PlanScheduleMissing => "P0102",
            DiagCode::PlanScheduleSpurious => "P0103",
            DiagCode::PlanInputMismatch => "P0201",
            DiagCode::PlanLatencyMismatch => "P0301",
            DiagCode::PlanHistMismatch => "P0302",
            DiagCode::PlanCustomFallback => "P0401",
            DiagCode::PlanNodeCount => "P0501",
        }
    }

    /// The severity this code carries by default (a lint driver may
    /// promote warnings with deny flags).
    pub fn default_severity(self) -> Severity {
        match self {
            DiagCode::ParseError
            | DiagCode::UnknownComponent
            | DiagCode::DuplicateComponent
            | DiagCode::ArityMismatch
            | DiagCode::InvalidLatency
            | DiagCode::LocalHistoryTooWide
            | DiagCode::LatencyInversion
            | DiagCode::SelectorBeforeArm
            | DiagCode::MetaTooWide => Severity::Error,
            DiagCode::LocalHistoryDisabled
            | DiagCode::GlobalHistoryShort
            | DiagCode::MetaBudgetExceeded
            | DiagCode::StorageDrift
            | DiagCode::ShadowedComponent
            | DiagCode::ZeroOverrideWindow
            | DiagCode::FieldNeverProduced => Severity::Warning,
            DiagCode::StorageSummary
            | DiagCode::GhistOverProvisioned
            | DiagCode::IndexAliasing
            | DiagCode::CorrelatedIndexPair => Severity::Note,
            DiagCode::PlanStageCount
            | DiagCode::PlanScheduleMissing
            | DiagCode::PlanInputMismatch
            | DiagCode::PlanLatencyMismatch
            | DiagCode::PlanHistMismatch
            | DiagCode::PlanNodeCount => Severity::Error,
            DiagCode::PlanScheduleSpurious | DiagCode::PlanCustomFallback => Severity::Warning,
        }
    }

    /// One-line description for `--list-codes` output and the README table.
    pub fn summary(self) -> &'static str {
        match self {
            DiagCode::ParseError => "topology syntax error",
            DiagCode::UnknownComponent => "component name has no registry entry",
            DiagCode::DuplicateComponent => "component name appears more than once",
            DiagCode::ArityMismatch => "declared arity does not match supplied inputs",
            DiagCode::InvalidLatency => "latency is zero or exceeds the pipeline depth",
            DiagCode::LocalHistoryDisabled => "local history wanted but not provided",
            DiagCode::GlobalHistoryShort => "global history register narrower than required",
            DiagCode::LocalHistoryTooWide => "local history exceeds the 64-bit provider limit",
            DiagCode::LatencyInversion => "overriding component responds before the overridden",
            DiagCode::SelectorBeforeArm => "selector responds before an arm component",
            DiagCode::MetaTooWide => "per-component metadata exceeds 64 bits",
            DiagCode::MetaBudgetExceeded => "summed metadata exceeds the history-file budget",
            DiagCode::StorageDrift => "storage deviates from the reference accounting",
            DiagCode::StorageSummary => "storage summary",
            DiagCode::ShadowedComponent => "component can never contribute a prediction",
            DiagCode::ZeroOverrideWindow => "override window has zero width",
            DiagCode::GhistOverProvisioned => "global history far wider than any component demand",
            DiagCode::FieldNeverProduced => "no component can populate a prediction field",
            DiagCode::IndexAliasing => "history-indexed table keeps too few PC bits",
            DiagCode::CorrelatedIndexPair => "two tables share geometry and history sources",
            DiagCode::PlanStageCount => "plan stage schedules disagree with the design depth",
            DiagCode::PlanScheduleMissing => "changeable node missing from a fold schedule",
            DiagCode::PlanScheduleSpurious => "unchangeable node scheduled for a fold",
            DiagCode::PlanInputMismatch => "plan input arrays disagree with topology edges",
            DiagCode::PlanLatencyMismatch => "cached latency disagrees with the component",
            DiagCode::PlanHistMismatch => "cached wants-hist flag violates the timing rule",
            DiagCode::PlanCustomFallback => "lowering fell back to the Custom escape hatch",
            DiagCode::PlanNodeCount => "plan node set disagrees with the elaborated design",
        }
    }

    /// All codes, in code order (for `--list-codes`).
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::ParseError,
            DiagCode::UnknownComponent,
            DiagCode::DuplicateComponent,
            DiagCode::ArityMismatch,
            DiagCode::InvalidLatency,
            DiagCode::LocalHistoryDisabled,
            DiagCode::GlobalHistoryShort,
            DiagCode::LocalHistoryTooWide,
            DiagCode::LatencyInversion,
            DiagCode::SelectorBeforeArm,
            DiagCode::MetaTooWide,
            DiagCode::MetaBudgetExceeded,
            DiagCode::StorageDrift,
            DiagCode::StorageSummary,
            DiagCode::ShadowedComponent,
            DiagCode::ZeroOverrideWindow,
            DiagCode::GhistOverProvisioned,
            DiagCode::FieldNeverProduced,
            DiagCode::IndexAliasing,
            DiagCode::CorrelatedIndexPair,
            DiagCode::PlanStageCount,
            DiagCode::PlanScheduleMissing,
            DiagCode::PlanScheduleSpurious,
            DiagCode::PlanInputMismatch,
            DiagCode::PlanLatencyMismatch,
            DiagCode::PlanHistMismatch,
            DiagCode::PlanCustomFallback,
            DiagCode::PlanNodeCount,
        ]
    }

    /// Looks a code up by its string form (`"C0201"`), for allow/deny
    /// flags.
    pub fn from_code(s: &str) -> Option<DiagCode> {
        DiagCode::all().iter().copied().find(|c| c.code() == s)
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagCode,
    /// Effective severity (defaults to the code's, may be promoted or
    /// demoted by a lint driver's deny/allow flags).
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The offending component's registry label, when attributable.
    pub component: Option<String>,
    /// Byte range in the topology text, when attributable.
    pub span: Option<Span>,
    /// A suggested fix.
    pub hint: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: DiagCode, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.default_severity(),
            message: message.into(),
            component: None,
            span: None,
            hint: None,
        }
    }

    /// Attaches the offending component's label.
    pub fn with_component(mut self, label: impl Into<String>) -> Self {
        self.component = Some(label.into());
        self
    }

    /// Attaches the offending span in the topology text.
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }

    /// `true` when this diagnostic is error-level.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic with a caret line under `topology` (the text
    /// the span indexes into), plus the hint if present.
    pub fn render(&self, topology: &str) -> String {
        let mut out = self.to_string();
        if let Some(span) = self.span {
            out.push_str(&format!("\n  {topology}\n  {}", span.caret_line()));
        }
        if let Some(hint) = &self.hint {
            out.push_str(&format!("\n  hint: {hint}"));
        }
        out
    }

    /// Renders the diagnostic as a JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"code\":{}", json_str(self.code.code())),
            format!("\"severity\":{}", json_str(self.severity.name())),
            format!("\"message\":{}", json_str(&self.message)),
        ];
        if let Some(c) = &self.component {
            fields.push(format!("\"component\":{}", json_str(c)));
        }
        if let Some(s) = self.span {
            fields.push(format!(
                "\"span\":{{\"start\":{},\"end\":{}}}",
                s.start, s.end
            ));
        }
        if let Some(h) = &self.hint {
            fields.push(format!("\"hint\":{}", json_str(h)));
        }
        format!("{{{}}}", fields.join(","))
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.code.code(),
            self.message
        )?;
        if let Some(c) = &self.component {
            write!(f, " (component `{c}`)")?;
        }
        Ok(())
    }
}

/// Minimal JSON string escaping (the analyzer has no serde dependency).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = DiagCode::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code(), "{a:?} and {b:?} share a code");
            }
        }
        assert_eq!(
            DiagCode::from_code("C0201"),
            Some(DiagCode::LatencyInversion)
        );
        assert_eq!(DiagCode::from_code("C9999"), None);
    }

    #[test]
    fn severity_ordering_puts_errors_last() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
    }

    #[test]
    fn render_includes_caret_and_hint() {
        let d = Diagnostic::new(DiagCode::LatencyInversion, "boom")
            .with_component("X1")
            .with_span(Span::new(5, 7))
            .with_hint("fix it");
        let r = d.render("AAAA BB CC");
        assert!(r.contains("error[C0201]: boom"));
        assert!(r.contains("\n       ^^"), "caret under bytes 5..7: {r}");
        assert!(r.contains("hint: fix it"));
    }

    #[test]
    fn json_escapes_and_shapes() {
        let d = Diagnostic::new(DiagCode::ParseError, "bad \"quote\"").with_span(Span::new(0, 1));
        let j = d.to_json();
        assert!(j.contains("\"code\":\"C0001\""));
        assert!(j.contains("\\\"quote\\\""));
        assert!(j.contains("\"span\":{\"start\":0,\"end\":1}"));
    }
}
