//! The resolved design model the analysis passes run over.
//!
//! A [`DesignModel`] is the static elaboration of a topology against a
//! component registry: every resolvable component is instantiated once to
//! read its declared properties (latency, arity, metadata width, history
//! requirements, field profile, storage), and the override/arbitration
//! structure is captured as an input graph in dataflow order. Unresolvable
//! names become structural diagnostics instead of failures, so the passes
//! can still report on the rest of the design.

use super::diagnostics::{DiagCode, Diagnostic};
use crate::composer::{ComponentRegistry, Topology};
use crate::error::{ComposeError, Span};
use crate::iface::FieldProfile;

/// Static facts about one component instance in a topology.
#[derive(Debug, Clone)]
pub struct ComponentInfo {
    /// Registry label, e.g. `"TAGE3"`.
    pub label: String,
    /// Component kind, e.g. `"tage"`.
    pub kind: String,
    /// Byte span of this occurrence in the topology text.
    pub span: Span,
    /// Declared response latency.
    pub latency: u8,
    /// Declared `predict_in` arity.
    pub arity: usize,
    /// Declared metadata width in bits.
    pub meta_bits: u32,
    /// Local-history bits the component wants per fetch PC.
    pub local_history_bits: u32,
    /// Global-history bits the component actually reads.
    pub required_ghist_bits: u32,
    /// Which prediction fields the component may/always populates.
    pub profile: FieldProfile,
    /// Declared storage in bits.
    pub storage_bits: u64,
    /// Full storage declaration (per-SRAM specs and flop bits), for the
    /// resource model.
    pub storage: crate::types::StorageReport,
    /// Per-table index-function descriptors, for the interference pass.
    pub index_fns: Vec<crate::iface::IndexDescriptor>,
    /// `true` when this component lowers through the `Custom` escape hatch
    /// (boxed trait object, opaque to the plan compiler).
    pub is_custom: bool,
    /// Indices (into [`DesignModel::components`]) of resolved inputs, in
    /// port order.
    pub inputs: Vec<usize>,
    /// Number of inputs the topology supplies, counting unresolvable ones
    /// (used for arity checking).
    pub declared_inputs: usize,
    /// `true` when this node is an arbitration selector in the topology
    /// (`SEL > [..]`).
    pub is_selector: bool,
}

/// The statically-elaborated form of a design, ready for analysis.
#[derive(Debug)]
pub struct DesignModel {
    /// Design name (or `"<topology>"` for raw topology strings).
    pub name: String,
    /// The topology source text all spans index into.
    pub topology: String,
    /// Fetch width the components were instantiated for.
    pub width: u8,
    /// Global-history register width the design supplies.
    pub ghist_bits: u32,
    /// Local-history entries the design supplies (0 = no local provider).
    pub lhist_entries: u64,
    /// Resolved components in dataflow order (inputs before consumers).
    pub components: Vec<ComponentInfo>,
    /// Index of the final (topmost) component, when it resolved.
    pub final_node: Option<usize>,
    /// Diagnostics produced during resolution (unknown components,
    /// malformed operands).
    pub resolution: Vec<Diagnostic>,
}

impl DesignModel {
    /// Elaborates `topology_text` against `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::Parse`] when the text does not parse;
    /// resolution problems (unknown names) become diagnostics in
    /// [`resolution`](Self::resolution) instead.
    pub fn build(
        name: &str,
        topology_text: &str,
        registry: &ComponentRegistry,
        width: u8,
        ghist_bits: u32,
        lhist_entries: u64,
    ) -> Result<Self, ComposeError> {
        let (topo, spans) = Topology::parse_spanned(topology_text)?;
        let mut b = Builder {
            registry,
            width,
            spans,
            next_occurrence: 0,
            components: Vec::new(),
            resolution: Vec::new(),
        };
        let final_node = b.visit(&topo);
        Ok(Self {
            name: name.into(),
            topology: topology_text.into(),
            width,
            ghist_bits,
            lhist_entries,
            components: b.components,
            final_node,
            resolution: b.resolution,
        })
    }

    /// All component indices in the subtree rooted at `idx` (including
    /// `idx` itself).
    pub fn subtree(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            out.push(i);
            stack.extend(self.components[i].inputs.iter().copied());
        }
        out
    }

    /// Sum of declared metadata bits over all resolved components.
    pub fn meta_bits_total(&self) -> u32 {
        self.components.iter().map(|c| c.meta_bits).sum()
    }

    /// Sum of declared component storage in bits (management structures
    /// excluded).
    pub fn component_storage_bits(&self) -> u64 {
        self.components.iter().map(|c| c.storage_bits).sum()
    }

    /// Pipeline depth implied by the declared latencies.
    pub fn depth(&self) -> u8 {
        self.components
            .iter()
            .map(|c| c.latency)
            .max()
            .unwrap_or(1)
            .max(1)
    }
}

struct Builder<'a> {
    registry: &'a ComponentRegistry,
    width: u8,
    /// Span of the n-th component name, in textual (= `component_names`)
    /// order.
    spans: Vec<Span>,
    next_occurrence: usize,
    components: Vec<ComponentInfo>,
    resolution: Vec<Diagnostic>,
}

impl Builder<'_> {
    /// Claims the span of the next component name in textual order.
    fn next_span(&mut self) -> Span {
        let s = self
            .spans
            .get(self.next_occurrence)
            .copied()
            .unwrap_or(Span::point(0));
        self.next_occurrence += 1;
        s
    }

    /// Walks the topology, claiming name spans in textual order while
    /// building nodes in dataflow order. Returns the node index for `t`'s
    /// root, or `None` when it (or a parent-relevant part) is unresolvable.
    fn visit(&mut self, t: &Topology) -> Option<usize> {
        match t {
            Topology::Leaf(name) => {
                let span = self.next_span();
                self.add(name, span, Vec::new(), 0, false)
            }
            Topology::Over(a, b) => match &**a {
                Topology::Leaf(name) => {
                    // `a` occurs textually before anything in `b`.
                    let span = self.next_span();
                    let below = self.visit(b);
                    self.add(name, span, below.into_iter().collect(), 1, false)
                }
                compound => {
                    // The composer rejects a compound left operand of `>`;
                    // surface the same rule as a structural diagnostic and
                    // keep walking so the operands still get checked.
                    let up = self.visit(compound);
                    let span = up.map(|i| self.components[i].span);
                    let mut d = Diagnostic::new(
                        DiagCode::ParseError,
                        format!("the left operand of `>` must be a single component, found `{compound}`"),
                    )
                    .with_hint("parenthesized chains can only appear inside arbitration arms");
                    if let Some(span) = span {
                        d = d.with_span(span);
                    }
                    self.resolution.push(d);
                    self.visit(b);
                    up
                }
            },
            Topology::Arbiter { selector, inputs } => {
                let span = self.next_span();
                let resolved: Vec<usize> = inputs.iter().filter_map(|i| self.visit(i)).collect();
                self.add(selector, span, resolved, inputs.len(), true)
            }
        }
    }

    fn add(
        &mut self,
        name: &str,
        span: Span,
        inputs: Vec<usize>,
        declared_inputs: usize,
        is_selector: bool,
    ) -> Option<usize> {
        let Ok(c) = self.registry.build(name, self.width, Some(span)) else {
            self.resolution.push(
                Diagnostic::new(
                    DiagCode::UnknownComponent,
                    format!("unknown component `{name}`: no factory registered under this name"),
                )
                .with_component(name)
                .with_span(span)
                .with_hint("register the component in the design's registry, or fix the spelling"),
            );
            return None;
        };
        let storage = c.storage();
        self.components.push(ComponentInfo {
            label: name.to_string(),
            kind: c.kind().to_string(),
            span,
            latency: c.latency(),
            arity: c.arity(),
            meta_bits: c.meta_bits(),
            local_history_bits: c.local_history_bits(),
            required_ghist_bits: c.required_ghist_bits(),
            profile: c.field_profile(),
            storage_bits: storage.total_bits(),
            storage,
            index_fns: c.index_functions(),
            is_custom: c.is_custom(),
            inputs,
            declared_inputs,
            is_selector,
        });
        Some(self.components.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    #[test]
    fn model_resolves_paper_design() {
        let d = designs::tage_l();
        let m = DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 0).unwrap();
        assert_eq!(m.components.len(), 5);
        assert!(m.resolution.is_empty());
        let last = &m.components[m.final_node.unwrap()];
        assert_eq!(last.label, "LOOP3");
        assert_eq!(m.depth(), 3);
        // Spans point at the right names.
        for c in &m.components {
            assert_eq!(&m.topology[c.span.start..c.span.end], c.label);
        }
    }

    #[test]
    fn model_links_arbiter_inputs() {
        let d = designs::tournament();
        let m =
            DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 256).unwrap();
        let sel = &m.components[m.final_node.unwrap()];
        assert_eq!(sel.label, "TOURNEY3");
        assert!(sel.is_selector);
        assert_eq!(sel.inputs.len(), 2);
        assert_eq!(sel.declared_inputs, 2);
        // First arm is GBIM2 > BTB2: its subtree has two components.
        assert_eq!(m.subtree(sel.inputs[0]).len(), 2);
    }

    #[test]
    fn unknown_component_becomes_diagnostic_not_failure() {
        let d = designs::b2();
        let m =
            DesignModel::build("broken", "GTAG3 > NOPE9 > BIM2", &d.registry, 8, 16, 0).unwrap();
        assert_eq!(m.components.len(), 2, "GTAG3 and BIM2 still resolve");
        assert_eq!(m.resolution.len(), 1);
        let diag = &m.resolution[0];
        assert_eq!(diag.code, DiagCode::UnknownComponent);
        assert_eq!(diag.span, Some(crate::error::Span::new(8, 13)));
    }
}
