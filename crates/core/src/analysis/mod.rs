//! Static analysis of predictor topologies (the `cobra-lint` engine).
//!
//! The analyzer elaborates a topology against its [`ComponentRegistry`]
//! into a [`DesignModel`] — instantiating each component once to read its
//! declared latency, arity, metadata width, history requirements, field
//! profile, storage, and index functions — and then runs static passes
//! over it, without simulating a single fetch packet:
//!
//! * **L1 latency** — override chains must refine monotonically
//!   ([`DiagCode::LatencyInversion`]) and selectors must not arbitrate
//!   before their arms respond ([`DiagCode::SelectorBeforeArm`]);
//! * **L2 metadata** — per-component width caps and the summed
//!   history-file budget, with per-component attribution;
//! * **L3 storage** — per-component accounting, drift against a reference
//!   figure, and the paper Table 1 delta as a note;
//! * **L4 reachability** — components whose predictions can never survive
//!   composition (shadowing, zero-width override windows);
//! * **L5 structure** — duplicates, arity mismatches, invalid latencies,
//!   and history-provider requirements;
//! * **L6 dataflow** ([`dataflow`]) — history-width inference, field-flow,
//!   and index-interference analysis over propagated component metadata.
//!
//! A second tier cross-checks the *compiled* artifacts rather than the
//! topology:
//!
//! * the **plan-soundness verifier** ([`planck`], `P0101`–`P0501`)
//!   re-derives fold schedules and input wiring from component metadata
//!   and checks the lowered [`ExecutionPlan`] against them — run via
//!   [`verify_design_plan`], `cobra-lint --plan`, and (under
//!   `COBRA_VERIFY_PLAN`) inside [`BranchPredictorUnit::build`];
//! * the **resource model** ([`resource`], the `cobra-area` binary)
//!   rolls per-component SRAM geometry and management storage into a
//!   machine-readable budget report, bit-exact with the runtime
//!   accounting.
//!
//! Findings are [`Diagnostic`]s with stable codes, severities, spans into
//! the topology text, and fix hints; an [`AnalysisReport`] renders them
//! human-readable or as JSON. [`BranchPredictorUnit::build`] runs the
//! error-level subset of these passes, so a defective design is rejected
//! with diagnostics instead of producing a silently-broken pipeline.
//!
//! [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build
//! [`ExecutionPlan`]: crate::composer::ExecutionPlan

pub mod dataflow;
pub mod diagnostics;
pub mod model;
pub mod passes;
pub mod planck;
pub mod resource;

pub use diagnostics::{DiagCode, Diagnostic, Severity};
pub use model::{ComponentInfo, DesignModel};
pub use planck::{verify_env_enabled, verify_pipeline};
pub use resource::{management_storage_report, ResourceReport};

use crate::composer::{ComponentRegistry, Design, PredictorPipeline};
use crate::error::ComposeError;
use diagnostics::json_str;

/// Knobs for an analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Fetch width components are instantiated for.
    pub width: u8,
    /// History-file metadata budget in bits
    /// ([`DiagCode::MetaBudgetExceeded`] fires above this).
    pub meta_budget_bits: u32,
    /// History-file capacity used for management-storage accounting.
    pub history_file_entries: usize,
    /// Reference component-storage figure in KB;
    /// [`DiagCode::StorageDrift`] fires when the model deviates beyond
    /// [`storage_tolerance`](Self::storage_tolerance).
    pub reference_kb: Option<f64>,
    /// The paper's Table 1 storage figure in KB, reported as a delta in the
    /// [`DiagCode::StorageSummary`] note.
    pub paper_kb: Option<f64>,
    /// Relative tolerance for [`DiagCode::StorageDrift`].
    pub storage_tolerance: f64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self {
            width: 8,
            meta_budget_bits: 256,
            history_file_entries: 40,
            reference_kb: None,
            paper_kb: None,
            storage_tolerance: 0.25,
        }
    }
}

/// The outcome of analyzing one design.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Design name.
    pub name: String,
    /// The topology text all diagnostic spans index into.
    pub topology: String,
    /// Fetch width the design was analyzed at.
    pub width: u8,
    /// Pipeline depth implied by the declared latencies.
    pub depth: u8,
    /// Global-history register width the design supplies.
    pub ghist_bits: u32,
    /// Summed per-component metadata bits.
    pub meta_bits: u32,
    /// Summed component storage in bits.
    pub component_storage_bits: u64,
    /// Storage of the generated management structures (history file and
    /// providers) in bits.
    pub management_storage_bits: u64,
    /// Per-component static facts, in dataflow order.
    pub components: Vec<ComponentInfo>,
    /// Every finding, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Error-level findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-level findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// `true` when no finding is at or above `floor`.
    pub fn is_clean(&self, floor: Severity) -> bool {
        self.diagnostics.iter().all(|d| d.severity < floor)
    }

    /// Total storage (components + management) in KB.
    pub fn total_storage_kb(&self) -> f64 {
        (self.component_storage_bits + self.management_storage_bits) as f64 / 8192.0
    }

    /// Renders the report for terminals: a header, each diagnostic with its
    /// caret line, and a summary count.
    pub fn render_human(&self) -> String {
        let mut out = format!("{}: {}\n", self.name, self.topology);
        out.push_str(&format!(
            "  width {}, depth {}, ghist {} b, metadata {} b, storage {:.2} KB \
             (components {:.2} + management {:.2})\n",
            self.width,
            self.depth,
            self.ghist_bits,
            self.meta_bits,
            self.total_storage_kb(),
            self.component_storage_bits as f64 / 8192.0,
            self.management_storage_bits as f64 / 8192.0,
        ));
        for d in &self.diagnostics {
            for line in d.render(&self.topology).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        out.push_str(&format!("  {errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// Renders the report as one JSON object.
    pub fn render_json(&self) -> String {
        let components = self
            .components
            .iter()
            .map(|c| {
                format!(
                    "{{\"label\":{},\"kind\":{},\"latency\":{},\"meta_bits\":{},\
                     \"storage_bits\":{}}}",
                    json_str(&c.label),
                    json_str(&c.kind),
                    c.latency,
                    c.meta_bits,
                    c.storage_bits
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let diagnostics = self
            .diagnostics
            .iter()
            .map(Diagnostic::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"design\":{},\"topology\":{},\"width\":{},\"depth\":{},\"ghist_bits\":{},\
             \"meta_bits\":{},\"component_storage_bits\":{},\"management_storage_bits\":{},\
             \"errors\":{},\"warnings\":{},\"components\":[{components}],\
             \"diagnostics\":[{diagnostics}]}}",
            json_str(&self.name),
            json_str(&self.topology),
            self.width,
            self.depth,
            self.ghist_bits,
            self.meta_bits,
            self.component_storage_bits,
            self.management_storage_bits,
            self.errors().count(),
            self.warnings().count(),
        )
    }
}

/// Storage of the management structures [`BranchPredictorUnit::build`]
/// would generate for this model, in bits. See
/// [`resource::management_storage_report`] for the full report.
///
/// [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build
fn management_storage_bits(model: &DesignModel, cfg: &AnalysisConfig) -> u64 {
    resource::management_storage_report(model, cfg).total_bits()
}

/// Analyzes a raw topology string against `registry`.
///
/// # Errors
///
/// Returns [`ComposeError::Parse`] when the text does not parse; every
/// other finding lands in the report's diagnostics.
pub fn analyze_topology(
    name: &str,
    topology: &str,
    registry: &ComponentRegistry,
    ghist_bits: u32,
    lhist_entries: u64,
    cfg: &AnalysisConfig,
) -> Result<AnalysisReport, ComposeError> {
    let model = DesignModel::build(
        name,
        topology,
        registry,
        cfg.width,
        ghist_bits,
        lhist_entries,
    )?;
    let diagnostics = passes::run_all(&model, cfg);
    Ok(AnalysisReport {
        name: model.name.clone(),
        topology: model.topology.clone(),
        width: model.width,
        depth: model.depth(),
        ghist_bits: model.ghist_bits,
        meta_bits: model.meta_bits_total(),
        component_storage_bits: model.component_storage_bits(),
        management_storage_bits: management_storage_bits(&model, cfg),
        components: model.components,
        diagnostics,
    })
}

/// Analyzes a packaged [`Design`].
///
/// # Errors
///
/// Returns [`ComposeError::Parse`] when the design's topology does not
/// parse.
pub fn analyze_design(
    design: &Design,
    cfg: &AnalysisConfig,
) -> Result<AnalysisReport, ComposeError> {
    analyze_topology(
        &design.name,
        &design.topology,
        &design.registry,
        design.ghist_bits,
        design.lhist_entries,
        cfg,
    )
}

/// Compiles `design`'s pipeline and runs the tier-1 plan-soundness
/// verifier over its lowered [`ExecutionPlan`] (the `cobra-lint --plan`
/// entry point).
///
/// Returns the verifier's diagnostics — empty when the plan is sound. The
/// elaborated model rides along so per-node findings carry spans into the
/// topology text.
///
/// # Errors
///
/// Returns the composition error when the pipeline itself cannot be
/// compiled (unknown components, invalid latencies, …) or the topology
/// does not parse.
///
/// [`ExecutionPlan`]: crate::composer::ExecutionPlan
pub fn verify_design_plan(design: &Design, width: u8) -> Result<Vec<Diagnostic>, ComposeError> {
    let pipeline = PredictorPipeline::from_design(design, width)?;
    let model = DesignModel::build(
        &design.name,
        &design.topology,
        &design.registry,
        width,
        design.ghist_bits,
        design.lhist_entries,
    )?;
    Ok(verify_pipeline(&pipeline, Some(&model)))
}

/// The build-time gate: rejects `design` when any error-level pass fires.
///
/// Run by [`BranchPredictorUnit::build`] after pipeline compilation, so a
/// defective topology produces structured diagnostics instead of a
/// silently-broken pipeline.
///
/// # Errors
///
/// [`ComposeError::Parse`] when the topology does not parse, or
/// [`ComposeError::Analysis`] carrying every error-level diagnostic.
///
/// [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build
pub fn gate_design(design: &Design, width: u8) -> Result<(), ComposeError> {
    let cfg = AnalysisConfig {
        width,
        ..AnalysisConfig::default()
    };
    let report = analyze_design(design, &cfg)?;
    let errors: Vec<Diagnostic> = report.errors().cloned().collect();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(ComposeError::Analysis {
            diagnostics: errors,
        })
    }
}

/// The admission gate for raw topology strings: parses and lints
/// `topology` against `registry` and rejects it when any error-level pass
/// fires — *before* anything is simulated or even elaborated into a
/// pipeline.
///
/// This is what `cobra-serve` runs on every submitted job, so a malformed
/// topology comes back to the client as structured `C`-code diagnostics
/// instead of a worker panic. On success the full [`AnalysisReport`] is
/// returned (a server can surface storage figures or warnings alongside
/// the acceptance).
///
/// # Errors
///
/// [`ComposeError::Parse`] (with a span) when the text does not parse, or
/// [`ComposeError::Analysis`] carrying every error-level diagnostic.
pub fn gate_topology(
    name: &str,
    topology: &str,
    registry: &ComponentRegistry,
    ghist_bits: u32,
    lhist_entries: u64,
    width: u8,
) -> Result<AnalysisReport, ComposeError> {
    let cfg = AnalysisConfig {
        width,
        ..AnalysisConfig::default()
    };
    let report = analyze_topology(name, topology, registry, ghist_bits, lhist_entries, &cfg)?;
    let errors: Vec<Diagnostic> = report.errors().cloned().collect();
    if errors.is_empty() {
        Ok(report)
    } else {
        Err(ComposeError::Analysis {
            diagnostics: errors,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    #[test]
    fn stock_designs_are_error_and_warning_clean() {
        for d in designs::catalog() {
            let report = analyze_design(&d, &AnalysisConfig::default()).unwrap();
            assert!(
                report.is_clean(Severity::Warning),
                "{} dirty:\n{}",
                d.name,
                report.render_human()
            );
        }
    }

    #[test]
    fn report_always_carries_storage_note() {
        let report = analyze_design(&designs::b2(), &AnalysisConfig::default()).unwrap();
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == DiagCode::StorageSummary));
        assert!(report.management_storage_bits > 0);
    }

    #[test]
    fn gate_rejects_latency_inversion() {
        let mut d = designs::tage_l();
        d.topology = "UBTB1 > BIM2".into();
        let err = gate_design(&d, 8).unwrap_err();
        match err {
            ComposeError::Analysis { diagnostics } => {
                assert!(diagnostics.iter().all(|d| d.is_error()));
                assert!(diagnostics
                    .iter()
                    .any(|d| d.code == DiagCode::LatencyInversion));
            }
            other => panic!("expected Analysis error, got {other:?}"),
        }
    }

    #[test]
    fn json_report_is_parseable_shape() {
        let report = analyze_design(&designs::b2(), &AnalysisConfig::default()).unwrap();
        let j = report.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"design\":\"B2\""));
        assert!(j.contains("\"diagnostics\":["));
    }
}
