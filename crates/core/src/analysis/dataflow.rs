//! Tier-2 dataflow passes: history-width inference (`C0601`), field-flow
//! (`C0602`), and index interference (`C07xx`).
//!
//! These passes propagate per-component static declarations —
//! `required_ghist_bits`, [`FieldProfile`], and the per-table
//! [`IndexDescriptor`]s — through the topology instead of checking each
//! component in isolation:
//!
//! * **history inference** compares the design's supplied global-history
//!   width against the widest demand any component actually propagates;
//!   a register more than twice as wide as any reader is speculative
//!   state that every checkpoint, snapshot, and repair carries for
//!   nothing ([`DiagCode::GhistOverProvisioned`]);
//! * **field flow** folds [`FieldProfile`]s bottom-up with the composer's
//!   override/arbitration semantics to find prediction fields *no*
//!   component can ever populate — consumers of the final output read a
//!   constant ([`DiagCode::FieldNeverProduced`]);
//! * **interference** inspects [`IndexDescriptor`]s for history-indexed
//!   tables that keep too few PC bits to separate branches sharing
//!   history ([`DiagCode::IndexAliasing`] — the paper's Section V-B
//!   Tournament/`xz` diagnosis, derived statically), and for component
//!   pairs whose tables share geometry and history sources and therefore
//!   mistrain together ([`DiagCode::CorrelatedIndexPair`]).
//!
//! [`FieldProfile`]: crate::iface::FieldProfile
//! [`IndexDescriptor`]: crate::iface::IndexDescriptor

use super::diagnostics::{DiagCode, Diagnostic};
use super::model::DesignModel;
use crate::iface::{FieldProfile, FieldSet};
use cobra_sim::bits;

/// C0601 — the supplied global-history register is more than twice as wide
/// as any component's propagated demand.
pub fn history_inference(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // A component's demand is the max of its declared read width and what
    // its index functions actually fold in — either one keeps the bits live.
    let demand = model
        .components
        .iter()
        .map(|c| {
            c.index_fns
                .iter()
                .map(|ix| ix.ghist_bits)
                .max()
                .unwrap_or(0)
                .max(c.required_ghist_bits)
        })
        .max()
        .unwrap_or(0);
    if demand > 0 && model.ghist_bits > 2 * demand {
        out.push(
            Diagnostic::new(
                DiagCode::GhistOverProvisioned,
                format!(
                    "global history register is {} bits but no component reads more than \
                     {demand}: the unused bits are speculative state carried through every \
                     snapshot and repair",
                    model.ghist_bits
                ),
            )
            .with_hint(format!("ghist {demand} suffices for this composition")),
        );
    }
    out
}

/// Composed field profile of the subtree rooted at `idx`, following the
/// composer's semantics: an overrider's fields land on top of the chain
/// below (unions), while an arbiter forwards exactly one arm (so only
/// fields *every* arm guarantees are guaranteed).
fn composed_profile(model: &DesignModel, idx: usize) -> FieldProfile {
    let c = &model.components[idx];
    let own = c.profile;
    if c.inputs.is_empty() {
        return own;
    }
    let inputs: Vec<FieldProfile> = c
        .inputs
        .iter()
        .map(|&i| composed_profile(model, i))
        .collect();
    if c.is_selector {
        let mut may = own.may;
        let mut always = FieldSet::ALL;
        for p in &inputs {
            may = may.union(p.may);
            always = always.intersect(p.always);
        }
        FieldProfile {
            may,
            always: always.union(own.always),
        }
    } else {
        let mut may = own.may;
        let mut always = own.always;
        for p in &inputs {
            may = may.union(p.may);
            always = always.union(p.always);
        }
        FieldProfile { may, always }
    }
}

/// C0602 — a prediction field the composed final output can never carry.
pub fn field_flow(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(fin) = model.final_node else {
        return out;
    };
    if !model.resolution.is_empty() {
        // Unresolved components hide producers; don't guess.
        return out;
    }
    let composed = composed_profile(model, fin);
    let missing: Vec<&str> = [
        (FieldSet::KIND, "kind"),
        (FieldSet::TAKEN, "taken"),
        (FieldSet::TARGET, "target"),
    ]
    .iter()
    .filter(|(f, _)| !composed.may.contains(*f))
    .map(|&(_, n)| n)
    .collect();
    if !missing.is_empty() {
        let fin_label = &model.components[fin].label;
        out.push(
            Diagnostic::new(
                DiagCode::FieldNeverProduced,
                format!(
                    "no component in the composition can populate {}: consumers of \
                     `{fin_label}`'s output read a constant for {}",
                    missing.join("/"),
                    if missing.len() > 1 {
                        "these fields"
                    } else {
                        "this field"
                    },
                ),
            )
            .with_component(fin_label.clone())
            .with_span(model.components[fin].span)
            .with_hint("add a component whose field profile may populate the missing field(s)"),
        );
    }
    out
}

/// C0701/C0702 — index-aliasing and cross-component interference.
pub fn interference(model: &DesignModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // C0701: within one table, history dominates the index while the PC
    // contribution cannot even cover the row space — distinct static
    // branches with shared history collapse onto the same rows.
    for c in &model.components {
        for ix in &c.index_fns {
            let row_bits = bits::clog2(ix.sets.max(1));
            if ix.history_bits() > 0 && ix.pc_bits < row_bits {
                out.push(
                    Diagnostic::new(
                        DiagCode::IndexAliasing,
                        format!(
                            "`{}` indexes `{}` ({} sets) with only {} PC bit(s) against \
                             {} history bit(s): branches sharing history alias onto the \
                             same rows (cf. the paper's Tournament/xz analysis)",
                            c.label,
                            ix.table,
                            ix.sets,
                            ix.pc_bits,
                            ix.history_bits()
                        ),
                    )
                    .with_component(c.label.clone())
                    .with_span(c.span),
                );
            }
        }
    }
    // C0702: two different components whose tables share geometry and an
    // identical history-source signature hash correlated streams — they
    // mistrain together on exactly the workloads that stress either one.
    for (a_i, a) in model.components.iter().enumerate() {
        for b in model.components.iter().skip(a_i + 1) {
            for ix_a in &a.index_fns {
                for ix_b in &b.index_fns {
                    if ix_a.sets == ix_b.sets
                        && ix_a.history_bits() > 0
                        && ix_a.history_signature() == ix_b.history_signature()
                    {
                        out.push(
                            Diagnostic::new(
                                DiagCode::CorrelatedIndexPair,
                                format!(
                                    "`{}`.`{}` and `{}`.`{}` share geometry ({} sets) and \
                                     an identical history signature: their index streams \
                                     are correlated and the tables mistrain together",
                                    a.label, ix_a.table, b.label, ix_b.table, ix_a.sets
                                ),
                            )
                            .with_component(a.label.clone())
                            .with_span(a.span),
                        );
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    fn model_for(topo: &str, ghist: u32, lhist: u64) -> DesignModel {
        let reg = designs::stock_registry();
        DesignModel::build("test", topo, &reg, 8, ghist, lhist).unwrap()
    }

    #[test]
    fn tournament_ghist_is_over_provisioned() {
        // The Tournament design supplies 32 ghist bits; GBIM2 reads 14 and
        // TOURNEY3 12 — more than 2× headroom.
        let d = designs::tournament();
        let m =
            DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 256).unwrap();
        let diags = history_inference(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::GhistOverProvisioned);
    }

    #[test]
    fn tight_ghist_is_silent() {
        let m = model_for("GTAG3 > BIM2", 16, 0);
        assert!(history_inference(&m).is_empty());
    }

    #[test]
    fn direction_only_chain_misses_kind_and_target() {
        // GTAG3 and BIM2 both carry only `taken`.
        let m = model_for("GTAG3 > BIM2", 16, 0);
        let diags = field_flow(&m);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, DiagCode::FieldNeverProduced);
        assert!(diags[0].message.contains("kind"));
        assert!(diags[0].message.contains("target"));
    }

    #[test]
    fn catalog_designs_produce_all_fields() {
        for d in designs::catalog() {
            let m = DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 256)
                .unwrap();
            assert!(field_flow(&m).is_empty(), "{} flagged", d.name);
        }
    }

    #[test]
    fn tournament_tables_alias_on_history() {
        // GBIM2 keeps 4 PC bits against 14 history bits over 2048-row
        // banks; LBIM2 keeps 3 against 32; TOURNEY3 keeps 2 against 12.
        let d = designs::tournament();
        let m =
            DesignModel::build(&d.name, &d.topology, &d.registry, 8, d.ghist_bits, 256).unwrap();
        let diags = interference(&m);
        let aliased: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::IndexAliasing)
            .filter_map(|d| d.component.clone())
            .collect();
        assert!(aliased.contains(&"GBIM2".to_string()), "{diags:?}");
        assert!(aliased.contains(&"LBIM2".to_string()), "{diags:?}");
        assert!(aliased.contains(&"TOURNEY3".to_string()), "{diags:?}");
    }

    #[test]
    fn pc_indexed_tables_do_not_alias() {
        let m = model_for("BTB2 > BIM2", 16, 0);
        assert!(interference(&m).is_empty());
    }

    #[test]
    fn correlated_pair_fires_on_shared_geometry() {
        // Two GShare tables with identical geometry and history widths:
        // correlated index streams that mistrain together.
        use crate::components::{Hbim, HbimConfig};
        use crate::composer::ComponentRegistry;
        let mut reg = ComponentRegistry::new();
        reg.register_kind("GSA2", |w| Hbim::new(HbimConfig::gbim(4096, 12, w)).into());
        reg.register_kind("GSB2", |w| Hbim::new(HbimConfig::gbim(4096, 12, w)).into());
        let m = DesignModel::build("twin", "GSA2 > GSB2", &reg, 8, 16, 0).unwrap();
        let diags = interference(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagCode::CorrelatedIndexPair),
            "{diags:?}"
        );
    }
}
