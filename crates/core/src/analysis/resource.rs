//! The static resource model behind `cobra-area` (ROADMAP item 1's budget
//! oracle).
//!
//! A [`ResourceReport`] rolls a design's per-component storage
//! declarations — every SRAM macro with its geometry and port discipline,
//! plus flop bits — together with the management structures
//! [`BranchPredictorUnit::build`] would generate (history file, history
//! providers), into one machine-readable budget report. It is computed
//! from the elaborated [`DesignModel`] alone: no pipeline is built and no
//! packet is simulated, which is what makes it usable as the composer
//! autotuner's pruning oracle — a candidate topology over budget is
//! rejected before anything expensive happens.
//!
//! The numbers are *identical* to the runtime accounting
//! ([`BranchPredictorUnit::storage_by_component`] / `meta_storage`): the
//! `table1_storage` and `fig8_area` harnesses assert bit-exact equality on
//! every catalog design.
//!
//! [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build
//! [`BranchPredictorUnit::storage_by_component`]: crate::composer::BranchPredictorUnit::storage_by_component

use super::diagnostics::json_str;
use super::model::DesignModel;
use super::AnalysisConfig;
use crate::composer::{
    GlobalHistoryProvider, HistoryFile, LocalHistoryProvider, PathHistoryProvider,
};
use crate::types::StorageReport;
use cobra_sim::PortKind;

/// Storage of the management structures [`BranchPredictorUnit::build`]
/// would generate for this model, mirroring its construction (and merge
/// order) exactly.
///
/// Returns an empty report when the design wants a local history wider
/// than the 64-bit provider limit — the provider cannot be built and
/// `C0108` already reports the defect.
///
/// [`BranchPredictorUnit::build`]: crate::composer::BranchPredictorUnit::build
pub fn management_storage_report(model: &DesignModel, cfg: &AnalysisConfig) -> StorageReport {
    let lhist_bits = model
        .components
        .iter()
        .map(|c| c.local_history_bits)
        .max()
        .unwrap_or(0);
    if lhist_bits > 64 {
        return StorageReport::new();
    }
    let lhist_entries = if lhist_bits == 0 {
        1
    } else {
        model.lhist_entries.max(1)
    };
    let hf = HistoryFile::new(
        cfg.history_file_entries,
        model.ghist_bits,
        lhist_bits,
        model.meta_bits_total(),
    );
    let mut r = hf.storage();
    r.merge(&GlobalHistoryProvider::new(model.ghist_bits).storage());
    r.merge(&LocalHistoryProvider::new(lhist_entries.next_power_of_two(), lhist_bits).storage());
    r.merge(&PathHistoryProvider::new(16).storage());
    r
}

/// One design's static storage budget: per-component reports plus the
/// generated management structures.
#[derive(Debug)]
pub struct ResourceReport {
    /// Design name.
    pub design: String,
    /// Topology text.
    pub topology: String,
    /// Fetch width the components were instantiated for.
    pub width: u8,
    /// Per-component storage declarations, in dataflow order.
    pub components: Vec<(String, StorageReport)>,
    /// Management structures (history file + providers).
    pub management: StorageReport,
    /// Budget cap in KB, when the caller enforces one.
    pub budget_kb: Option<f64>,
}

impl ResourceReport {
    /// Computes the report from an elaborated model — statically, without
    /// building a pipeline.
    pub fn from_model(model: &DesignModel, cfg: &AnalysisConfig) -> Self {
        Self {
            design: model.name.clone(),
            topology: model.topology.clone(),
            width: model.width,
            components: model
                .components
                .iter()
                .map(|c| (c.label.clone(), c.storage.clone()))
                .collect(),
            management: management_storage_report(model, cfg),
            budget_kb: None,
        }
    }

    /// Sets the budget cap checked by [`over_budget_kb`](Self::over_budget_kb).
    pub fn with_budget_kb(mut self, kb: f64) -> Self {
        self.budget_kb = Some(kb);
        self
    }

    /// Summed component storage in bits (management excluded).
    pub fn component_bits(&self) -> u64 {
        self.components.iter().map(|(_, r)| r.total_bits()).sum()
    }

    /// Total storage in bits (components + management).
    pub fn total_bits(&self) -> u64 {
        self.component_bits() + self.management.total_bits()
    }

    /// Total storage in KB.
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8192.0
    }

    /// By how many KB the design exceeds its budget, when it does.
    pub fn over_budget_kb(&self) -> Option<f64> {
        let budget = self.budget_kb?;
        let total = self.total_kb();
        (total > budget).then_some(total - budget)
    }

    /// Renders the report as one JSON object (the autotuner's pruning
    /// input): per-component SRAM geometry, flop bits, totals, and the
    /// budget verdict.
    pub fn render_json(&self) -> String {
        let components = self
            .components
            .iter()
            .map(|(label, r)| {
                let srams = r
                    .srams
                    .iter()
                    .map(|(name, s)| {
                        format!(
                            "{{\"name\":{},\"entries\":{},\"entry_bits\":{},\"banks\":{},\
                             \"ports\":{},\"bits\":{}}}",
                            json_str(name),
                            s.entries,
                            s.entry_bits,
                            s.banks,
                            json_str(port_name(s.ports)),
                            s.total_bits()
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"label\":{},\"bits\":{},\"kilobytes\":{:.6},\"flop_bits\":{},\
                     \"srams\":[{srams}]}}",
                    json_str(label),
                    r.total_bits(),
                    r.kilobytes(),
                    r.flop_bits
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let budget = match self.budget_kb {
            Some(kb) => format!(
                ",\"budget_kb\":{kb:.6},\"within_budget\":{}",
                self.over_budget_kb().is_none()
            ),
            None => String::new(),
        };
        format!(
            "{{\"design\":{},\"topology\":{},\"width\":{},\"component_bits\":{},\
             \"management_bits\":{},\"total_bits\":{},\"total_kb\":{:.6},\
             \"components\":[{components}]{budget}}}",
            json_str(&self.design),
            json_str(&self.topology),
            self.width,
            self.component_bits(),
            self.management.total_bits(),
            self.total_bits(),
            self.total_kb(),
        )
    }
}

fn port_name(p: PortKind) -> &'static str {
    match p {
        PortKind::SinglePort => "1RW",
        PortKind::DualPort => "1R1W",
        PortKind::TwoReadOneWrite => "2R1W",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::{BpuConfig, BranchPredictorUnit};
    use crate::designs;

    fn model_of(d: &crate::composer::Design) -> DesignModel {
        DesignModel::build(
            &d.name,
            &d.topology,
            &d.registry,
            8,
            d.ghist_bits,
            d.lhist_entries,
        )
        .unwrap()
    }

    #[test]
    fn static_model_matches_runtime_accounting_bit_exactly() {
        for d in designs::catalog() {
            let model = model_of(&d);
            let cfg = AnalysisConfig::default();
            let report = ResourceReport::from_model(&model, &cfg);
            let bpu = BranchPredictorUnit::build(&d, BpuConfig::default()).unwrap();
            let runtime: Vec<(String, u64)> = bpu
                .storage_by_component()
                .into_iter()
                .map(|(l, r)| (l, r.total_bits()))
                .collect();
            let statics: Vec<(String, u64)> = report
                .components
                .iter()
                .map(|(l, r)| (l.clone(), r.total_bits()))
                .collect();
            assert_eq!(statics, runtime, "{} component storage diverged", d.name);
            assert_eq!(
                report.management.total_bits(),
                bpu.meta_storage().total_bits(),
                "{} management storage diverged",
                d.name
            );
            assert_eq!(
                report.total_bits(),
                bpu.total_storage().total_bits(),
                "{} total diverged",
                d.name
            );
        }
    }

    #[test]
    fn budget_verdicts() {
        let model = model_of(&designs::b2());
        let cfg = AnalysisConfig::default();
        let tight = ResourceReport::from_model(&model, &cfg).with_budget_kb(1.0);
        assert!(tight.over_budget_kb().is_some());
        let roomy = ResourceReport::from_model(&model, &cfg).with_budget_kb(10_000.0);
        assert!(roomy.over_budget_kb().is_none());
    }

    #[test]
    fn json_carries_geometry_and_budget() {
        let model = model_of(&designs::tournament());
        let j = ResourceReport::from_model(&model, &AnalysisConfig::default())
            .with_budget_kb(100.0)
            .render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"design\":\"Tournament\""));
        assert!(j.contains("\"ports\":"));
        assert!(j.contains("\"within_budget\":"));
    }
}
