//! Compiled execution plans: the devirtualized per-packet hot path.
//!
//! The interpreter in [`pipeline`](crate::composer::PredictorPipeline)
//! walks a `Box<dyn Component>` DAG, re-deciding per stage which nodes
//! fold and allocating fresh input vectors for every node of every stage.
//! This module removes both taxes:
//!
//! * [`ComponentKind`] is a monomorphized enum over the stock component
//!   library. Dispatch on the packet path is a jump table over enum
//!   variants the compiler can see through (and inline), not a virtual
//!   call through a vtable. User components still plug in via the
//!   [`ComponentKind::Custom`] escape variant at the old cost.
//! * [`ExecutionPlan`] precomputes, at `Bpu::build` time, everything the
//!   interpreter re-derives per packet: flat input-index arrays, per-node
//!   latencies and history wants, and a per-stage *fold schedule* — the
//!   subset of nodes whose composed output can actually change at that
//!   stage (a node folds at stage `d` only when its own response first
//!   arrives, `latency == d`, or a transitive input does). Composition
//!   is pure in its inputs, so skipped nodes keep their prior-stage
//!   output byte-for-byte.
//!
//! The plan is a pure scheduling artifact: it never changes *what* is
//! computed, only *when*, and `COBRA_PLAN=off` re-enables the interpreter
//! for differential checking (`crates/bench/tests/plan_identity.rs`).

use crate::components::{
    Btb, Gtag, Hbim, Ittage, LoopPredictor, MicroBtb, Perceptron, StatisticalCorrector, Tage,
    Tourney,
};
use crate::iface::{
    Component, FieldProfile, FireEvent, IndexDescriptor, PredictQuery, Response, UpdateEvent,
};
use crate::types::{AccessReport, Meta, PredictionBundle, StorageReport};
use cobra_sim::{SnapError, StateReader, StateWriter};

/// A predictor sub-component with monomorphized dispatch for the stock
/// library.
///
/// Every stock component gets its own variant, so the per-packet
/// `predict`/`compose` calls compile to direct (inlineable) calls behind
/// one enum discriminant test. Components outside the stock library are
/// carried by [`ComponentKind::Custom`] and still pay the virtual call —
/// correctness is identical, only the dispatch cost differs.
pub enum ComponentKind {
    /// Bimodal counter table family (BIM/GBIM/LBIM/GShare/GSelect).
    Hbim(Hbim),
    /// Large set-associative branch target buffer.
    Btb(Btb),
    /// Small fully-associative 1-cycle micro-BTB.
    MicroBtb(MicroBtb),
    /// Partially-tagged global-history table (the B2 backing predictor).
    Gtag(Gtag),
    /// Multi-table tagged geometric-history predictor.
    Tage(Tage),
    /// Loop-exit corrector with speculative iteration counters.
    LoopPredictor(LoopPredictor),
    /// Tournament arbitration between two sub-predictors.
    Tourney(Tourney),
    /// Perceptron direction predictor.
    Perceptron(Perceptron),
    /// Indirect-target TAGE.
    Ittage(Ittage),
    /// Statistical corrector reverting low-confidence predictions.
    StatisticalCorrector(StatisticalCorrector),
    /// Escape hatch for user components registered through
    /// [`ComponentRegistry::register`](crate::composer::ComponentRegistry::register):
    /// dispatch stays virtual, exactly as the interpreter always paid.
    Custom(Box<dyn Component>),
}

/// Expands to a `match` delegating to the payload of every variant, so
/// each inherent method below is a single enum dispatch over direct calls.
macro_rules! dispatch {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            ComponentKind::Hbim($c) => $body,
            ComponentKind::Btb($c) => $body,
            ComponentKind::MicroBtb($c) => $body,
            ComponentKind::Gtag($c) => $body,
            ComponentKind::Tage($c) => $body,
            ComponentKind::LoopPredictor($c) => $body,
            ComponentKind::Tourney($c) => $body,
            ComponentKind::Perceptron($c) => $body,
            ComponentKind::Ittage($c) => $body,
            ComponentKind::StatisticalCorrector($c) => $body,
            ComponentKind::Custom($c) => $body,
        }
    };
}

macro_rules! kind_from {
    ($($variant:ident => $ty:ty),* $(,)?) => {
        $(impl From<$ty> for ComponentKind {
            fn from(c: $ty) -> Self {
                ComponentKind::$variant(c)
            }
        })*
    };
}

kind_from! {
    Hbim => Hbim,
    Btb => Btb,
    MicroBtb => MicroBtb,
    Gtag => Gtag,
    Tage => Tage,
    LoopPredictor => LoopPredictor,
    Tourney => Tourney,
    Perceptron => Perceptron,
    Ittage => Ittage,
    StatisticalCorrector => StatisticalCorrector,
}

impl From<Box<dyn Component>> for ComponentKind {
    fn from(c: Box<dyn Component>) -> Self {
        ComponentKind::Custom(c)
    }
}

impl ComponentKind {
    /// `true` for the [`Custom`](Self::Custom) escape variant — such nodes
    /// are scheduled conservatively (every stage) because their `compose`
    /// is not known to be pure.
    pub fn is_custom(&self) -> bool {
        matches!(self, ComponentKind::Custom(_))
    }

    /// See [`Component::kind`].
    #[inline]
    pub fn kind(&self) -> &'static str {
        dispatch!(self, c => c.kind())
    }

    /// See [`Component::label`].
    pub fn label(&self) -> String {
        dispatch!(self, c => c.label())
    }

    /// See [`Component::latency`].
    #[inline]
    pub fn latency(&self) -> u8 {
        dispatch!(self, c => c.latency())
    }

    /// See [`Component::arity`].
    pub fn arity(&self) -> usize {
        dispatch!(self, c => c.arity())
    }

    /// See [`Component::meta_bits`].
    pub fn meta_bits(&self) -> u32 {
        dispatch!(self, c => c.meta_bits())
    }

    /// See [`Component::local_history_bits`].
    pub fn local_history_bits(&self) -> u32 {
        dispatch!(self, c => c.local_history_bits())
    }

    /// See [`Component::field_profile`].
    pub fn field_profile(&self) -> FieldProfile {
        dispatch!(self, c => c.field_profile())
    }

    /// See [`Component::required_ghist_bits`].
    pub fn required_ghist_bits(&self) -> u32 {
        dispatch!(self, c => c.required_ghist_bits())
    }

    /// See [`Component::index_functions`].
    pub fn index_functions(&self) -> Vec<IndexDescriptor> {
        dispatch!(self, c => c.index_functions())
    }

    /// See [`Component::storage`].
    pub fn storage(&self) -> StorageReport {
        dispatch!(self, c => c.storage())
    }

    /// See [`Component::accesses`].
    pub fn accesses(&self) -> Vec<AccessReport> {
        dispatch!(self, c => c.accesses())
    }

    /// See [`Component::port_violations`].
    pub fn port_violations(&self) -> usize {
        dispatch!(self, c => c.port_violations())
    }

    /// See [`Component::predict`].
    #[inline]
    pub fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        dispatch!(self, c => c.predict(q))
    }

    /// See [`Component::compose`].
    #[inline]
    pub fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        dispatch!(self, c => c.compose(width, own, inputs))
    }

    /// See [`Component::finalize_meta`].
    #[inline]
    pub fn finalize_meta(&self, own: &Response, inputs: &[PredictionBundle]) -> Meta {
        dispatch!(self, c => c.finalize_meta(own, inputs))
    }

    /// See [`Component::fire`].
    #[inline]
    pub fn fire(&mut self, ev: &FireEvent<'_>) {
        dispatch!(self, c => c.fire(ev))
    }

    /// See [`Component::mispredict`].
    #[inline]
    pub fn mispredict(&mut self, ev: &UpdateEvent<'_>) {
        dispatch!(self, c => c.mispredict(ev))
    }

    /// See [`Component::repair`].
    #[inline]
    pub fn repair(&mut self, ev: &FireEvent<'_>) {
        dispatch!(self, c => c.repair(ev))
    }

    /// See [`Component::update`].
    #[inline]
    pub fn update(&mut self, ev: &UpdateEvent<'_>) {
        dispatch!(self, c => c.update(ev))
    }

    /// See [`Component::arm_baseline`].
    pub fn arm_baseline(&mut self) -> bool {
        dispatch!(self, c => c.arm_baseline())
    }

    /// See [`Component::reset_baseline`].
    pub fn reset_baseline(&mut self) {
        dispatch!(self, c => c.reset_baseline())
    }

    /// See [`Component::save_state`].
    pub fn save_state(&self, w: &mut StateWriter) {
        dispatch!(self, c => c.save_state(w))
    }

    /// See [`Component::load_state`].
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        dispatch!(self, c => c.load_state(r))
    }
}

/// [`ComponentKind`] is itself a [`Component`], so it drops into any
/// trait-object context (conformance checkers, user harnesses). The
/// pipeline never calls through this impl — its hot path uses the
/// inherent enum-dispatch methods, which take precedence at call sites.
impl Component for ComponentKind {
    fn kind(&self) -> &'static str {
        ComponentKind::kind(self)
    }
    fn label(&self) -> String {
        ComponentKind::label(self)
    }
    fn latency(&self) -> u8 {
        ComponentKind::latency(self)
    }
    fn arity(&self) -> usize {
        ComponentKind::arity(self)
    }
    fn meta_bits(&self) -> u32 {
        ComponentKind::meta_bits(self)
    }
    fn local_history_bits(&self) -> u32 {
        ComponentKind::local_history_bits(self)
    }
    fn field_profile(&self) -> FieldProfile {
        ComponentKind::field_profile(self)
    }
    fn required_ghist_bits(&self) -> u32 {
        ComponentKind::required_ghist_bits(self)
    }
    fn index_functions(&self) -> Vec<IndexDescriptor> {
        ComponentKind::index_functions(self)
    }
    fn storage(&self) -> StorageReport {
        ComponentKind::storage(self)
    }
    fn accesses(&self) -> Vec<AccessReport> {
        ComponentKind::accesses(self)
    }
    fn port_violations(&self) -> usize {
        ComponentKind::port_violations(self)
    }
    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        ComponentKind::predict(self, q)
    }
    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        ComponentKind::compose(self, width, own, inputs)
    }
    fn finalize_meta(&self, own: &Response, inputs: &[PredictionBundle]) -> Meta {
        ComponentKind::finalize_meta(self, own, inputs)
    }
    fn fire(&mut self, ev: &FireEvent<'_>) {
        ComponentKind::fire(self, ev)
    }
    fn mispredict(&mut self, ev: &UpdateEvent<'_>) {
        ComponentKind::mispredict(self, ev)
    }
    fn repair(&mut self, ev: &FireEvent<'_>) {
        ComponentKind::repair(self, ev)
    }
    fn update(&mut self, ev: &UpdateEvent<'_>) {
        ComponentKind::update(self, ev)
    }
    fn arm_baseline(&mut self) -> bool {
        ComponentKind::arm_baseline(self)
    }
    fn reset_baseline(&mut self) {
        ComponentKind::reset_baseline(self)
    }
    fn save_state(&self, w: &mut StateWriter) {
        ComponentKind::save_state(self, w)
    }
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        ComponentKind::load_state(self, r)
    }
}

impl std::fmt::Debug for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ComponentKind::{}", self.label())
    }
}

/// Everything the per-packet fold needs that is invariant across packets,
/// computed once at compile time.
///
/// Inputs are stored flat (`input_ix[input_range[i].0..input_range[i].1]`
/// are node `i`'s input node indices) so the fold touches two contiguous
/// arrays instead of chasing a `Vec<Vec<usize>>`.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    /// `stage_sched[d-1]`: node indices (ascending) whose composed output
    /// can change at stage `d`. Stage 1 schedules every node.
    pub(crate) stage_sched: Vec<Vec<u32>>,
    /// Flat input-index array; see [`Self::input_range`].
    pub(crate) input_ix: Vec<u32>,
    /// Per-node `[lo, hi)` range into [`Self::input_ix`].
    pub(crate) input_range: Vec<(u32, u32)>,
    /// Cached per-node latency (avoids re-dispatching in the hot loop).
    pub(crate) latency: Vec<u8>,
    /// `true` for nodes of latency ≥ 2 (receive histories per the
    /// interface's history-timing rule).
    pub(crate) wants_hist: Vec<bool>,
}

impl ExecutionPlan {
    /// Lowers a compiled node array into a plan.
    ///
    /// `inputs(i)` yields node `i`'s input indices; nodes are in dataflow
    /// order (inputs strictly before consumers), which both the flat
    /// input arrays and the one-pass transitive-consumer closure rely on.
    pub(crate) fn lower(
        n: usize,
        depth: u8,
        latency: Vec<u8>,
        custom: &[bool],
        inputs: impl Fn(usize) -> Vec<usize>,
    ) -> Self {
        let mut input_ix = Vec::new();
        let mut input_range = Vec::with_capacity(n);
        for i in 0..n {
            let lo = input_ix.len() as u32;
            for j in inputs(i) {
                debug_assert!(j < i, "dataflow order violated: {j} feeds {i}");
                input_ix.push(j as u32);
            }
            input_range.push((lo, input_ix.len() as u32));
        }
        let wants_hist: Vec<bool> = latency.iter().map(|&l| l >= 2).collect();
        let mut stage_sched: Vec<Vec<u32>> = Vec::with_capacity(depth as usize);
        // Stage 1 folds everything: outputs go from their initial empty
        // bundles to composed values.
        stage_sched.push((0..n as u32).collect());
        let mut mark = vec![false; n];
        for d in 2..=depth {
            for m in mark.iter_mut() {
                *m = false;
            }
            for i in 0..n {
                // A node folds when its own response first arrives, when
                // any input re-folded this stage, or unconditionally for
                // custom components (their compose is opaque).
                let (lo, hi) = input_range[i];
                let input_changed = input_ix[lo as usize..hi as usize]
                    .iter()
                    .any(|&j| mark[j as usize]);
                mark[i] = latency[i] == d || custom[i] || input_changed;
            }
            stage_sched.push(
                mark.iter()
                    .enumerate()
                    .filter(|&(_, &m)| m)
                    .map(|(i, _)| i as u32)
                    .collect(),
            );
        }
        // Deliberate lowering bug for the CI mutation-smoke leg: drop the
        // last node from the final stage schedule. The plan verifier must
        // flag this statically (P0102) without running a single packet.
        #[cfg(cobra_seeded_bug)]
        if let Some(last) = stage_sched.last_mut() {
            last.pop();
        }
        Self {
            stage_sched,
            input_ix,
            input_range,
            latency,
            wants_hist,
        }
    }

    /// Node indices scheduled at stage `d` (1-based).
    pub fn schedule(&self, d: u8) -> &[u32] {
        &self.stage_sched[d as usize - 1]
    }

    /// Total scheduled folds across all stages — the plan's per-packet
    /// compose-call count (the interpreter's is `nodes × depth`).
    pub fn total_folds(&self) -> usize {
        self.stage_sched.iter().map(Vec::len).sum()
    }

    /// Number of component nodes the plan was lowered for (the
    /// self-profiler's row count).
    pub fn node_count(&self) -> usize {
        self.latency.len()
    }
}

/// Reusable per-packet buffers, held by the pipeline so the plan path
/// performs no transient allocation.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Raw per-node responses for the in-flight packet.
    pub(crate) responses: Vec<Response>,
    /// Latest composed output per node.
    pub(crate) outs: Vec<PredictionBundle>,
    /// Input-gather buffer (bounded by the widest arity).
    pub(crate) inputs_buf: Vec<PredictionBundle>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::HbimConfig;

    #[test]
    fn stock_components_are_not_custom() {
        let k: ComponentKind = Hbim::new(HbimConfig::bim(1024, 4)).into();
        assert!(!k.is_custom());
        assert_eq!(k.kind(), "bim");
        assert_eq!(k.latency(), 2);
    }

    #[test]
    fn boxed_component_becomes_custom() {
        let b: Box<dyn Component> = Box::new(Hbim::new(HbimConfig::bim(1024, 4)));
        let k: ComponentKind = b.into();
        assert!(k.is_custom());
        assert_eq!(k.kind(), "bim");
    }

    #[test]
    fn lower_chain_schedules_only_changing_nodes() {
        // Chain: node0 (lat 1) -> node1 (lat 2) -> node2 (lat 3).
        // Stage 2: node1 responds, node2 refolds (consumer). Stage 3:
        // only node2.
        let plan = ExecutionPlan::lower(3, 3, vec![1, 2, 3], &[false; 3], |i| {
            if i == 0 {
                vec![]
            } else {
                vec![i - 1]
            }
        });
        assert_eq!(plan.schedule(1), &[0, 1, 2]);
        assert_eq!(plan.schedule(2), &[1, 2]);
        assert_eq!(plan.schedule(3), &[2]);
        assert_eq!(plan.total_folds(), 6);
    }

    #[test]
    fn lower_arbiter_refolds_on_any_arm() {
        // nodes 0,1 (lat 2) feed selector 2 (lat 3).
        let plan = ExecutionPlan::lower(3, 3, vec![2, 2, 3], &[false; 3], |i| {
            if i == 2 {
                vec![0, 1]
            } else {
                vec![]
            }
        });
        assert_eq!(plan.schedule(2), &[0, 1, 2]);
        assert_eq!(plan.schedule(3), &[2]);
    }

    #[test]
    fn lower_schedules_custom_nodes_every_stage() {
        let plan = ExecutionPlan::lower(2, 3, vec![1, 3], &[true, false], |i| {
            if i == 1 {
                vec![0]
            } else {
                vec![]
            }
        });
        // Custom node 0 folds every stage, dragging its consumer along.
        assert_eq!(plan.schedule(2), &[0, 1]);
        assert_eq!(plan.schedule(3), &[0, 1]);
    }

    #[test]
    fn flat_inputs_round_trip() {
        let plan = ExecutionPlan::lower(3, 1, vec![1, 1, 1], &[false; 3], |i| {
            if i == 2 {
                vec![0, 1]
            } else {
                vec![]
            }
        });
        let (lo, hi) = plan.input_range[2];
        assert_eq!(&plan.input_ix[lo as usize..hi as usize], &[0, 1]);
        assert_eq!(plan.input_range[0], (0, 0));
    }
}
