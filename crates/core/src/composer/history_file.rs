//! The generated history file (paper Section IV-B1).
//!
//! "The generated history file is a circular buffer which tracks the state
//! of predictions in the pipeline." An entry is allocated when a fetch
//! packet queries the predictor, accumulates the packet's history
//! snapshots and per-component metadata, receives branch resolutions from
//! the backend, and is dequeued in program order as the core commits.

use crate::iface::SlotResolution;
use crate::obs::PacketAttribution;
use crate::types::{Meta, PredictionBundle, StorageReport, MAX_FETCH_WIDTH};
use cobra_sim::{
    CircularBuffer, HistorySnapshot, PortKind, SnapError, SramSpec, StateReader, StateWriter,
};

/// Lifecycle phase of a history-file entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryPhase {
    /// Still in the fetch pipeline; prediction not yet final.
    Fetching,
    /// Accepted into the core; awaiting resolution and commit.
    Accepted,
}

/// One in-flight fetch packet's predictor state.
#[derive(Debug, Clone)]
pub struct HistoryFileEntry {
    /// Fetch-packet start address.
    pub pc: u64,
    /// Lifecycle phase.
    pub phase: EntryPhase,
    /// Global-history snapshot at query time (what the packet's
    /// predictions were formed with).
    pub ghist: HistorySnapshot,
    /// Local history read at query time (for index regeneration).
    pub lhist_query: u64,
    /// Pre-update local history at accept time (for squash repair).
    pub lhist_old: u64,
    /// Path history at query time.
    pub phist: u64,
    /// Per-component metadata, in pipeline node order.
    pub metas: Vec<Meta>,
    /// The final prediction this packet acted on (updated on revision).
    pub pred: PredictionBundle,
    /// The global-history bits this packet currently contributes, as
    /// `(bits, count)` with the oldest outcome in the LSB.
    pub spec_bits: (u8, u8),
    /// Backend resolutions received so far, in slot order.
    pub resolutions: Vec<SlotResolution>,
    /// The slot that mispredicted, if any.
    pub mispredicted_slot: Option<u8>,
    /// Set once this entry's packet has been truncated at a mispredicted
    /// slot: resolutions past it are stale wrong-path reports.
    pub truncated_at: Option<u8>,
    /// Value-flow provenance of the packet's final prediction, used to
    /// charge mispredict blame to the providing component. Observability
    /// state only — it declares no storage.
    pub attr: PacketAttribution,
}

impl HistoryFileEntry {
    /// Iterates the packet's current speculative history bits, oldest
    /// first.
    pub fn spec_bit_iter(&self) -> impl Iterator<Item = bool> + '_ {
        let (bits, count) = self.spec_bits;
        (0..count).map(move |i| (bits >> i) & 1 == 1)
    }

    /// Records a resolution, keeping slot order and replacing a stale
    /// duplicate for the same slot.
    pub fn record_resolution(&mut self, res: SlotResolution) {
        match self.resolutions.binary_search_by_key(&res.slot, |r| r.slot) {
            Ok(i) => self.resolutions[i] = res,
            Err(i) => self.resolutions.insert(i, res),
        }
    }

    /// Serializes the entry into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.pc);
        w.write_u64(match self.phase {
            EntryPhase::Fetching => 0,
            EntryPhase::Accepted => 1,
        });
        self.ghist.save_state(w);
        w.write_u64(self.lhist_query);
        w.write_u64(self.lhist_old);
        w.write_u64(self.phist);
        w.write_u64(self.metas.len() as u64);
        for m in &self.metas {
            w.write_u64(m.0);
        }
        self.pred.save_state(w);
        w.write_u64(u64::from(self.spec_bits.0));
        w.write_u64(u64::from(self.spec_bits.1));
        w.write_u64(self.resolutions.len() as u64);
        for res in &self.resolutions {
            res.save_state(w);
        }
        w.write_u64(encode_opt_u8(self.mispredicted_slot));
        w.write_u64(encode_opt_u8(self.truncated_at));
        self.attr.save_state(w);
    }

    /// Decodes an entry written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let pc = r.read_u64("entry pc")?;
        let phase = match r.read_u64_capped("entry phase", 1)? {
            0 => EntryPhase::Fetching,
            _ => EntryPhase::Accepted,
        };
        let ghist = HistorySnapshot::load_state(r)?;
        let lhist_query = r.read_u64("entry lhist query")?;
        let lhist_old = r.read_u64("entry lhist old")?;
        let phist = r.read_u64("entry phist")?;
        let n_metas = r.read_u64_capped("entry meta count", 256)?;
        let mut metas = Vec::with_capacity(n_metas as usize);
        for _ in 0..n_metas {
            metas.push(Meta(r.read_u64("entry meta")?));
        }
        let pred = PredictionBundle::load_state(r)?;
        let spec_bits = (
            r.read_u64_capped("entry spec bits", 0xff)? as u8,
            r.read_u64_capped("entry spec count", 8)? as u8,
        );
        let n_res = r.read_u64_capped("entry resolution count", MAX_FETCH_WIDTH as u64)?;
        let mut resolutions = Vec::with_capacity(n_res as usize);
        for _ in 0..n_res {
            resolutions.push(SlotResolution::load_state(r)?);
        }
        let mispredicted_slot = decode_opt_u8(r, "entry mispredicted slot")?;
        let truncated_at = decode_opt_u8(r, "entry truncated slot")?;
        let attr = PacketAttribution::load_state(r)?;
        Ok(HistoryFileEntry {
            pc,
            phase,
            ghist,
            lhist_query,
            lhist_old,
            phist,
            metas,
            pred,
            spec_bits,
            resolutions,
            mispredicted_slot,
            truncated_at,
            attr,
        })
    }
}

/// Biased `Option<u8>` codec shared by the entry fields: 0 encodes `None`,
/// `v + 1` encodes `Some(v)`.
fn encode_opt_u8(v: Option<u8>) -> u64 {
    match v {
        None => 0,
        Some(s) => u64::from(s) + 1,
    }
}

fn decode_opt_u8(r: &mut StateReader<'_>, what: &'static str) -> Result<Option<u8>, SnapError> {
    match r.read_u64_capped(what, 0x100)? {
        0 => Ok(None),
        v => Ok(Some((v - 1) as u8)),
    }
}

/// Packs outcome bits (oldest first) into the `(bits, count)` form stored
/// per entry.
pub(crate) fn pack_bits(outcomes: impl IntoIterator<Item = bool>) -> (u8, u8) {
    let mut bits = 0u8;
    let mut count = 0u8;
    for t in outcomes {
        assert!(count < 8, "more history bits than fetch slots");
        bits |= (t as u8) << count;
        count += 1;
    }
    (bits, count)
}

/// The circular buffer of in-flight prediction state.
#[derive(Debug)]
pub struct HistoryFile {
    entries: CircularBuffer<HistoryFileEntry>,
    ghist_bits: u32,
    lhist_bits: u32,
    meta_bits: u32,
}

impl HistoryFile {
    /// Creates a history file of `capacity` entries, recording the widths
    /// needed for the storage declaration.
    pub fn new(capacity: usize, ghist_bits: u32, lhist_bits: u32, meta_bits: u32) -> Self {
        Self {
            entries: CircularBuffer::new(capacity),
            ghist_bits,
            lhist_bits,
            meta_bits,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.capacity()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no predictions are in flight.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when a further allocation would fail (fetch must stall).
    pub fn is_full(&self) -> bool {
        self.entries.is_full()
    }

    /// Allocates an entry, returning its token, or the entry back on
    /// overflow.
    #[allow(clippy::result_large_err)] // backpressure returns the entry by design
    pub fn allocate(&mut self, entry: HistoryFileEntry) -> Result<u64, HistoryFileEntry> {
        self.entries.push(entry)
    }

    /// Borrows a live entry.
    pub fn get(&self, token: u64) -> Option<&HistoryFileEntry> {
        self.entries.get(token)
    }

    /// Mutably borrows a live entry.
    pub fn get_mut(&mut self, token: u64) -> Option<&mut HistoryFileEntry> {
        self.entries.get_mut(token)
    }

    /// Pops the oldest entry (commit).
    pub fn pop_front(&mut self) -> Option<(u64, HistoryFileEntry)> {
        self.entries.pop()
    }

    /// Borrows the oldest entry.
    pub fn front(&self) -> Option<(u64, &HistoryFileEntry)> {
        self.entries.front()
    }

    /// Tokens of live entries strictly younger than `token`, oldest first.
    pub fn younger_than(&self, token: u64) -> Vec<u64> {
        self.entries.live_tokens().filter(|&t| t > token).collect()
    }

    /// All live tokens, oldest first.
    pub fn live(&self) -> Vec<u64> {
        self.entries.live_tokens().collect()
    }

    /// All live tokens, oldest first, as an allocation-free range (every
    /// token in the range is live — the underlying ring is contiguous).
    pub fn live_range(&self) -> std::ops::Range<u64> {
        self.entries.live_tokens()
    }

    /// Live tokens strictly younger than `token`, oldest first, as an
    /// allocation-free range.
    pub fn younger_range(&self, token: u64) -> std::ops::Range<u64> {
        let live = self.entries.live_tokens();
        live.start.max(token.saturating_add(1))..live.end
    }

    /// Removes every entry younger than `token` without cloning the
    /// victims (the hot-path squash: callers walk [`Self::younger_range`]
    /// first if they need the entries). Returns how many were removed.
    pub fn discard_after(&mut self, token: u64) -> usize {
        let n = self.younger_range(token).count();
        if n > 0 {
            self.entries.squash_after(token);
        }
        n
    }

    /// Removes every live entry without cloning (full pipeline flush).
    /// Returns how many were removed.
    pub fn discard_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Removes every entry younger than `token` (the squash after a
    /// mispredict resolves at `token`). The removed entries are returned
    /// youngest-first, the order in which their state must be restored.
    pub fn squash_after(&mut self, token: u64) -> Vec<HistoryFileEntry> {
        let victims: Vec<u64> = self.younger_than(token);
        let mut removed: Vec<HistoryFileEntry> = victims
            .iter()
            .filter_map(|&t| self.entries.get(t).cloned())
            .collect();
        self.entries.squash_after(token);
        removed.reverse();
        removed
    }

    /// Removes every live entry (full pipeline flush), youngest first.
    pub fn squash_all(&mut self) -> Vec<HistoryFileEntry> {
        let mut removed: Vec<HistoryFileEntry> =
            self.entries.iter().map(|(_, e)| e.clone()).collect();
        self.entries.clear();
        removed.reverse();
        removed
    }

    /// Serializes the ring of in-flight entries into a checkpoint stream.
    ///
    /// Widths are configuration, not state — the receiving history file
    /// must be built for the same design.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.entries.save_state(w, |w, e| e.save_state(w));
    }

    /// Restores the ring written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.entries.load_state(r, HistoryFileEntry::load_state)
    }

    /// Storage declaration for the area model: the history file is the bulk
    /// of the "Meta" cost in the paper's Fig 8 (ghist snapshot + local
    /// history + metadata + PC and prediction state per entry).
    pub fn storage(&self) -> StorageReport {
        let pred_bits = 8 * crate::types::MAX_FETCH_WIDTH as u64; // compressed prediction state
        let entry_bits = self.ghist_bits as u64
            + self.lhist_bits as u64
            + self.meta_bits as u64
            + 40 // pc
            + 10 // phase, spec bits, bookkeeping
            + pred_bits;
        let mut r = StorageReport::new();
        r.add_sram(
            "history-file",
            SramSpec {
                entries: self.capacity() as u64,
                entry_bits,
                ports: PortKind::TwoReadOneWrite,
                banks: 1,
            },
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_sim::HistoryRegister;

    fn entry(pc: u64) -> HistoryFileEntry {
        HistoryFileEntry {
            pc,
            phase: EntryPhase::Fetching,
            ghist: HistoryRegister::new(16).snapshot(),
            lhist_query: 0,
            lhist_old: 0,
            phist: 0,
            metas: vec![],
            pred: PredictionBundle::new(4),
            spec_bits: (0, 0),
            resolutions: vec![],
            mispredicted_slot: None,
            truncated_at: None,
            attr: PacketAttribution::EMPTY,
        }
    }

    #[test]
    fn allocate_and_commit_in_order() {
        let mut hf = HistoryFile::new(4, 16, 0, 32);
        let t0 = hf.allocate(entry(0x100)).unwrap();
        let t1 = hf.allocate(entry(0x110)).unwrap();
        assert!(t1 > t0);
        let (tok, e) = hf.pop_front().unwrap();
        assert_eq!(tok, t0);
        assert_eq!(e.pc, 0x100);
    }

    #[test]
    fn overflow_backpressures() {
        let mut hf = HistoryFile::new(2, 16, 0, 0);
        hf.allocate(entry(0)).unwrap();
        hf.allocate(entry(1)).unwrap();
        assert!(hf.is_full());
        assert!(hf.allocate(entry(2)).is_err());
    }

    #[test]
    fn squash_returns_youngest_first() {
        let mut hf = HistoryFile::new(8, 16, 0, 0);
        let t0 = hf.allocate(entry(0x10)).unwrap();
        hf.allocate(entry(0x20)).unwrap();
        hf.allocate(entry(0x30)).unwrap();
        let removed = hf.squash_after(t0);
        assert_eq!(removed.len(), 2);
        assert_eq!(removed[0].pc, 0x30, "youngest restored first");
        assert_eq!(removed[1].pc, 0x20);
        assert_eq!(hf.len(), 1);
    }

    #[test]
    fn record_resolution_keeps_slot_order() {
        let mut e = entry(0);
        let r = |slot| SlotResolution {
            slot,
            kind: crate::types::BranchKind::Conditional,
            taken: false,
            target: 0,
        };
        e.record_resolution(r(3));
        e.record_resolution(r(1));
        e.record_resolution(r(3)); // duplicate replaces
        assert_eq!(e.resolutions.len(), 2);
        assert_eq!(e.resolutions[0].slot, 1);
        assert_eq!(e.resolutions[1].slot, 3);
    }

    #[test]
    fn pack_bits_round_trip() {
        let (bits, count) = pack_bits([true, false, true]);
        assert_eq!(count, 3);
        let mut e = entry(0);
        e.spec_bits = (bits, count);
        let v: Vec<bool> = e.spec_bit_iter().collect();
        assert_eq!(v, vec![true, false, true]);
    }

    #[test]
    fn storage_scales_with_widths() {
        let small = HistoryFile::new(32, 16, 0, 20).storage().total_bits();
        let big = HistoryFile::new(32, 64, 32, 120).storage().total_bits();
        assert!(big > small);
        assert_eq!(big - small, 32 * ((64 - 16) + 32 + 100));
    }

    #[test]
    fn squash_all_empties_and_returns_everything() {
        let mut hf = HistoryFile::new(4, 16, 0, 0);
        hf.allocate(entry(1)).unwrap();
        hf.allocate(entry(2)).unwrap();
        let removed = hf.squash_all();
        assert_eq!(removed.len(), 2);
        assert!(hf.is_empty());
    }
}
