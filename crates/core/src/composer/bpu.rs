//! The complete branch-predictor unit: pipeline + management structures.
//!
//! [`BranchPredictorUnit`] is what a host core instantiates as "a drop-in
//! replacement for the host processor's existing branch prediction and
//! fetch redirection logic" (paper Section IV-C). It owns:
//!
//! * the compiled [`PredictorPipeline`];
//! * the generated [`HistoryFile`] (entries allocated at query, resolved by
//!   the backend, dequeued at commit);
//! * the [`GlobalHistoryProvider`] and [`LocalHistoryProvider`], updated
//!   speculatively and repaired via snapshots;
//! * the update/repair state machine: on a misprediction it squashes
//!   younger history-file entries, walking them to generate `repair`
//!   events that restore loop-predictor and local-history state, then
//!   issues the `mispredict` fast update and rewinds the global history.
//!
//! ## Protocol with the host frontend
//!
//! 1. [`query`](BranchPredictorUnit::query) at Fetch-0 allocates an entry
//!    and runs all sub-components.
//! 2. The frontend steers fetch with the stage-1 bundle and calls
//!    [`speculate`](BranchPredictorUnit::speculate); when a later stage
//!    changes the prediction it calls
//!    [`revise`](BranchPredictorUnit::revise), squashing younger fetches on
//!    a PC change (and, in [`GhistRepairMode::ReplayFetch`], on any
//!    history change — the Section VI-B experiment).
//! 3. When the packet leaves the fetch pipeline the frontend calls
//!    [`accept`](BranchPredictorUnit::accept) with the predecode-corrected
//!    bundle; `fire` events are broadcast and local history is
//!    speculatively updated.
//! 4. The backend reports executed branches via
//!    [`resolve`](BranchPredictorUnit::resolve); a misprediction triggers
//!    the repair walk and returns the redirect target.
//! 5. The core retires packets in order with
//!    [`commit_front`](BranchPredictorUnit::commit_front), which issues
//!    commit-time `update` events.

use crate::composer::history_file::{pack_bits, EntryPhase, HistoryFile, HistoryFileEntry};
use crate::composer::pipeline::PredictorPipeline;
use crate::composer::providers::{
    GlobalHistoryProvider, LocalHistoryProvider, PathHistoryProvider,
};
use crate::composer::registry::Design;
use crate::error::ComposeError;
use crate::iface::{HistoryView, SlotResolution, UpdateEvent};
use crate::obs::trace::{TraceEvent, TraceEventKind, TraceSink};
use crate::obs::{AttributionReport, DecisionField, PcBlame, StatsSink};
use crate::types::{BranchKind, Meta, PredictionBundle, StorageReport, SLOT_BYTES};
use cobra_sim::{
    HistoryRegister, HistorySnapshot, SnapError, Snapshot, StateReader, StateWriter, TokenSlab,
};

/// Identifies an in-flight fetch packet (its history-file token).
pub type PacketId = u64;

/// How the global-history provider treats a revision that changes the
/// packet's history contribution without changing the fetch PC
/// (Section VI-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GhistRepairMode {
    /// The paper's original design: the history register is repaired, but
    /// predictions already in flight — formed with the misspeculated
    /// history — are not replayed.
    SnapshotOnly,
    /// The paper's improved design: repairing the history forces a replay
    /// of the younger in-flight fetches with the corrected history,
    /// trading fetch bubbles for prediction accuracy (+15 % mean IPC in
    /// the paper).
    #[default]
    ReplayFetch,
}

/// Configuration of the generated management structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpuConfig {
    /// Fetch-packet width in prediction slots.
    pub fetch_width: u8,
    /// History-file capacity (in-flight fetch packets).
    pub history_file_entries: usize,
    /// Global-history repair mode.
    pub repair_mode: GhistRepairMode,
    /// History-file entries the repair state machine walks per cycle.
    pub repair_width: usize,
}

impl Default for BpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 8,
            history_file_entries: 40,
            repair_mode: GhistRepairMode::ReplayFetch,
            repair_width: 2,
        }
    }
}

/// Counters the unit maintains about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpuStats {
    /// Fetch packets queried.
    pub queries: u64,
    /// Packets accepted into the history file's backend phase.
    pub accepts: u64,
    /// Packets committed.
    pub commits: u64,
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// Conditional-branch direction mispredictions reported.
    pub mispredicts: u64,
    /// Prediction revisions (late-stage overrides and predecode fixes).
    pub revisions: u64,
    /// History-file entries walked by the repair state machine.
    pub repair_entries: u64,
}

/// A committed packet, returned to the host core for accounting.
#[derive(Debug, Clone)]
pub struct CommittedPacket {
    /// Fetch-packet start address.
    pub pc: u64,
    /// The prediction the packet acted on.
    pub pred: PredictionBundle,
    /// Resolved control-flow instructions.
    pub resolutions: Vec<SlotResolution>,
    /// The slot that mispredicted, if any.
    pub mispredicted_slot: Option<u8>,
}

/// The complete predictor unit generated by the composer.
pub struct BranchPredictorUnit {
    pipeline: PredictorPipeline,
    ghist: GlobalHistoryProvider,
    lhist: LocalHistoryProvider,
    phist: PathHistoryProvider,
    hf: HistoryFile,
    cfg: BpuConfig,
    cycle: u64,
    /// Transient per-packet stage bundles (pipeline registers in hardware).
    /// Keyed by the sequential history-file token, whose live window is
    /// bounded by `cfg.history_file_entries`.
    stage_bundles: TokenSlab<Vec<PredictionBundle>>,
    /// Recycled heap buffers from retired packets, reused by the next
    /// [`query_packet`](Self::query_packet) so the steady-state predict
    /// path performs no allocation. Transient: never serialized.
    stage_pool: Vec<Vec<PredictionBundle>>,
    meta_pool: Vec<Vec<Meta>>,
    snap_pool: Vec<HistorySnapshot>,
    scratch_hist: HistoryRegister,
    stats: BpuStats,
    /// Cycles of repair-walk work queued by the last mispredict.
    pub last_repair_cycles: u64,
    design_name: String,
    obs: StatsSink,
    tracers: Vec<TraceSink>,
    /// Serialized front-end state (everything but the pipeline) captured
    /// by [`arm_baseline`](Self::arm_baseline).
    host_baseline: Option<Vec<u8>>,
}

impl BranchPredictorUnit {
    /// Compiles `design` and generates the management structures.
    ///
    /// # Errors
    ///
    /// Propagates [`ComposeError`]s from topology parsing and pipeline
    /// compilation.
    pub fn build(design: &Design, cfg: BpuConfig) -> Result<Self, ComposeError> {
        let pipeline = PredictorPipeline::from_design(design, cfg.fetch_width)?;
        // Static analysis gate: reject designs with error-level findings
        // (latency inversions, shadowed components, over-wide metadata, …)
        // with structured diagnostics instead of building a pipeline whose
        // composition semantics are silently broken.
        crate::analysis::gate_design(design, cfg.fetch_width)?;
        // Plan-soundness verifier (opt-in via COBRA_VERIFY_PLAN; CI sets
        // it unconditionally): statically cross-check the lowered
        // ExecutionPlan against the elaborated design. Errors reject the
        // build; warnings (e.g. the Custom lowering fallback, P0401) are
        // reported but do not block.
        if crate::analysis::verify_env_enabled() {
            let model = crate::analysis::DesignModel::build(
                &design.name,
                &design.topology,
                &design.registry,
                cfg.fetch_width,
                design.ghist_bits,
                design.lhist_entries,
            )?;
            let diags = crate::analysis::verify_pipeline(&pipeline, Some(&model));
            let (errors, rest): (Vec<_>, Vec<_>) = diags.into_iter().partition(|d| d.is_error());
            for d in &rest {
                eprintln!("{}: {}", design.name, d.render(&design.topology));
            }
            if !errors.is_empty() {
                return Err(ComposeError::Analysis {
                    diagnostics: errors,
                });
            }
        }
        let lhist_bits = pipeline.local_history_bits();
        if lhist_bits > 64 {
            return Err(ComposeError::LocalHistoryTooWide {
                component: pipeline
                    .widest_local_history_component()
                    .unwrap_or_default(),
                bits: lhist_bits,
            });
        }
        let lhist_entries = if lhist_bits == 0 {
            1
        } else {
            design.lhist_entries.max(1)
        };
        let ghist = GlobalHistoryProvider::new(design.ghist_bits);
        let lhist = LocalHistoryProvider::new(lhist_entries.next_power_of_two(), lhist_bits);
        let hf = HistoryFile::new(
            cfg.history_file_entries,
            design.ghist_bits,
            lhist_bits,
            pipeline.meta_bits(),
        );
        let labels: Vec<String> = pipeline.labels().iter().map(|s| s.to_string()).collect();
        let obs = StatsSink::new(labels.clone());
        let mut tracers = Vec::new();
        if crate::obs::trace::enabled() {
            // Auto-attach the COBRA_TRACE sink. Bare unit-test BPUs get a
            // process-unique anonymous context; harness runs retarget it
            // (lazy open: nothing is written until the first event).
            let ctx = format!(
                "{}-{}",
                crate::obs::trace::sanitize_context(&design.name),
                TraceSink::anon_context()
            );
            if let Some(sink) = TraceSink::from_env(&ctx, labels) {
                tracers.push(sink);
            }
        }
        Ok(Self {
            scratch_hist: HistoryRegister::new(design.ghist_bits.max(1)),
            pipeline,
            ghist,
            lhist,
            phist: PathHistoryProvider::new(16),
            hf,
            cfg,
            cycle: 0,
            stage_bundles: TokenSlab::new(cfg.history_file_entries),
            stage_pool: Vec::new(),
            meta_pool: Vec::new(),
            snap_pool: Vec::new(),
            stats: BpuStats::default(),
            last_repair_cycles: 0,
            design_name: design.name.clone(),
            obs,
            tracers,
            host_baseline: None,
        })
    }

    /// The design name this unit was built from.
    pub fn design_name(&self) -> &str {
        &self.design_name
    }

    /// Pipeline depth (stages until the final component responds).
    pub fn depth(&self) -> u8 {
        self.pipeline.depth()
    }

    /// Fetch width in prediction slots.
    pub fn width(&self) -> u8 {
        self.pipeline.width()
    }

    /// The unit's configuration.
    pub fn config(&self) -> &BpuConfig {
        &self.cfg
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &BpuStats {
        &self.stats
    }

    /// The per-component attribution sink.
    pub fn attribution(&self) -> &StatsSink {
        &self.obs
    }

    /// Snapshot of the per-component attribution counters as a report.
    pub fn attribution_report(&self) -> AttributionReport {
        self.obs.report()
    }

    /// Starts recording per-PC mispredict blame (see
    /// [`StatsSink::enable_pc_blame`]).
    pub fn enable_pc_attribution(&mut self) {
        self.obs.enable_pc_blame();
    }

    /// The per-PC blame map, if enabled.
    pub fn pc_attribution(&self) -> Option<&PcBlame> {
        self.obs.pc_blame()
    }

    /// Attaches an explicit trace sink (in addition to, or instead of,
    /// the `COBRA_TRACE` auto-attached one).
    pub fn attach_tracer(&mut self, sink: TraceSink) {
        self.tracers.push(sink);
    }

    /// Re-resolves any `COBRA_TRACE` auto-attached sink's file name for
    /// `context` (e.g. a runner job id). Only effective before the first
    /// traced event — sinks open their file lazily.
    pub fn retarget_env_tracer(&mut self, context: &str) {
        for t in &mut self.tracers {
            if t.from_env {
                t.retarget(context);
            }
        }
    }

    /// Flushes attached trace sinks to disk.
    pub fn flush_tracers(&mut self) {
        for t in &mut self.tracers {
            t.flush();
        }
    }

    #[inline]
    fn trace(
        &mut self,
        kind: TraceEventKind,
        pc: u64,
        comp: Option<usize>,
        slot: Option<usize>,
        meta: Option<u64>,
    ) {
        if self.tracers.is_empty() {
            return;
        }
        let e = TraceEvent {
            kind,
            cycle: self.cycle,
            pc: Some(pc),
            comp,
            slot,
            meta,
        };
        for t in &mut self.tracers {
            t.record(&e);
        }
    }

    /// Current cycle (advanced by [`tick`](Self::tick)).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advances the unit's cycle counter (SRAM port accounting epoch).
    pub fn tick(&mut self) {
        self.cycle += 1;
    }

    /// `true` when the history file can take another packet.
    pub fn can_query(&self) -> bool {
        !self.hf.is_full()
    }

    /// Queries the predictor for a full-width packet at `pc`; see
    /// [`query_packet`](Self::query_packet).
    pub fn query(&mut self, pc: u64) -> Option<PacketId> {
        self.query_packet(pc, self.width())
    }

    /// Queries the predictor for the `width`-slot packet at `pc`,
    /// allocating a history-file entry. Returns `None` when the history
    /// file is full (fetch must stall).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds the configured fetch width.
    pub fn query_packet(&mut self, pc: u64, width: u8) -> Option<PacketId> {
        if self.hf.is_full() {
            return None;
        }
        let snapshot = match self.snap_pool.pop() {
            Some(mut s) => {
                self.ghist.snapshot_into(&mut s);
                s
            }
            None => self.ghist.snapshot(),
        };
        let lhist_query = self.lhist.read(self.cycle, pc);
        let phist_query = self.phist.current();
        let hist = HistoryView {
            ghist: self.ghist.current(),
            lhist: lhist_query,
            phist: phist_query,
        };
        let mut pp = crate::composer::pipeline::PacketPrediction {
            stages: self.stage_pool.pop().unwrap_or_default(),
            metas: self.meta_pool.pop().unwrap_or_default(),
            attr: crate::obs::PacketAttribution::EMPTY,
        };
        self.pipeline
            .predict_packet_into(self.cycle, pc, width, &hist, &mut pp);
        let crate::composer::pipeline::PacketPrediction {
            stages,
            metas,
            attr,
        } = pp;
        let final_bundle = *stages.last().expect("depth >= 1");
        self.obs.note_query(&attr, &final_bundle);
        let decision = attr.decision(&final_bundle);
        let provider = decision.and_then(|(s, f)| attr.provider(s, f));
        let provider_meta = provider.map(|p| metas[p].0);
        let entry = HistoryFileEntry {
            pc,
            phase: EntryPhase::Fetching,
            ghist: snapshot,
            lhist_query,
            lhist_old: 0,
            phist: phist_query,
            metas,
            pred: stages[0],
            spec_bits: (0, 0),
            resolutions: Vec::new(),
            mispredicted_slot: None,
            truncated_at: None,
            attr,
        };
        let token = match self.hf.allocate(entry) {
            Ok(t) => t,
            Err(_) => unreachable!("fullness checked above"),
        };
        self.obs.note_hf_occupancy(self.hf.len());
        self.stage_bundles.insert(token, stages);
        self.stats.queries += 1;
        self.trace(
            TraceEventKind::Predict,
            pc,
            provider,
            decision.map(|(s, _)| s),
            provider_meta,
        );
        Some(token)
    }

    /// The final prediction visible at Fetch-`stage` for an in-flight
    /// packet (`1 ≤ stage ≤ depth`). `None` once the packet has been
    /// accepted or squashed.
    pub fn prediction(&self, id: PacketId, stage: u8) -> Option<&PredictionBundle> {
        assert!(
            (1..=self.depth()).contains(&stage),
            "stage out of range 1..=depth"
        );
        self.stage_bundles.get(id).map(|v| &v[stage as usize - 1])
    }

    /// The frontend commits to steering fetch with packet `id`'s
    /// stage-`stage` bundle: its history bits enter the speculative global
    /// history.
    pub fn speculate(&mut self, id: PacketId, stage: u8) {
        let Some(bundle) = self.prediction(id, stage).copied() else {
            return;
        };
        let bits = pack_bits(bundle.history_bits());
        self.ghist
            .speculate((0..bits.1).map(|i| (bits.0 >> i) & 1 == 1));
        if let Some(e) = self.hf.get_mut(id) {
            e.spec_bits = bits;
            e.pred = bundle;
        }
    }

    /// Revises packet `id`'s prediction to `bundle` (a later-stage override
    /// or a predecode correction).
    ///
    /// With `squash_younger`, younger in-flight packets are squashed with
    /// repair events (the frontend will refetch them); otherwise their
    /// speculative history contributions are re-stacked on top of the
    /// corrected history while their own (now stale) predictions stand —
    /// the paper's original, non-replaying design.
    pub fn revise(&mut self, id: PacketId, bundle: &PredictionBundle, squash_younger: bool) {
        if self.hf.get(id).is_none() {
            return;
        }
        let new_bits = pack_bits(bundle.history_bits());
        self.stats.revisions += 1;
        if squash_younger {
            self.squash_younger_with_repair(id);
        }
        let e = self.hf.get_mut(id).expect("entry is live");
        e.spec_bits = new_bits;
        e.pred = *bundle;
        // Rebuild the speculative history: this packet's snapshot, its
        // corrected bits, then surviving younger packets' contributions.
        let e = self.hf.get(id).expect("entry is live");
        self.ghist.rewind_to(
            &e.ghist,
            (0..new_bits.1).map(|i| (new_bits.0 >> i) & 1 == 1),
        );
        self.obs.note_ghist_rewind();
        for t in self.hf.younger_range(id) {
            if let Some(y) = self.hf.get(t) {
                self.ghist.speculate(y.spec_bit_iter());
            }
        }
    }

    /// Updates packet `id`'s recorded prediction *without* touching the
    /// speculative global history — the paper's original (Section VI-B)
    /// non-replaying design: "misspeculated global history updates were
    /// repaired [only on mispredictions], but predictions formed from a
    /// misspeculated history were not replayed". The history bits this
    /// packet pushed stay as speculated, leaving the register skewed until
    /// the next misprediction rewinds it.
    pub fn revise_quiet(&mut self, id: PacketId, bundle: &PredictionBundle) {
        if let Some(e) = self.hf.get_mut(id) {
            e.pred = *bundle;
            self.stats.revisions += 1;
        }
    }

    /// Squashes packet `id` and everything younger (e.g. the frontend
    /// abandons a speculative fetch path entirely). The global history
    /// rewinds to `id`'s fetch-time snapshot.
    pub fn squash_from(&mut self, id: PacketId) {
        let Some(e) = self.hf.get(id) else { return };
        let snapshot = e.ghist.clone();
        self.squash_younger_with_repair(id);
        self.repair_one(id);
        // Remove `id` itself: discard_after keeps it, so pop via truncation.
        if id == 0 {
            // Token 0 cannot use discard_after(id-1); clear instead.
            self.hf.discard_all();
            self.stage_bundles.clear();
        } else {
            let removed = self.hf.discard_after(id - 1);
            debug_assert!(removed <= 1);
            self.recycle_stage_bundles(id);
        }
        self.ghist.rewind_to(&snapshot, []);
        self.obs.note_ghist_rewind();
    }

    /// Removes packet `id`'s stage bundles, returning the buffer to the
    /// pool for the next query.
    fn recycle_stage_bundles(&mut self, id: PacketId) {
        if let Some(mut v) = self.stage_bundles.remove(id) {
            v.clear();
            self.stage_pool.push(v);
        }
    }

    fn repair_one(&mut self, id: PacketId) {
        let Some(e) = self.hf.get(id) else { return };
        let pc = e.pc;
        self.scratch_hist.restore(&e.ghist);
        let hist = HistoryView {
            ghist: &self.scratch_hist,
            lhist: e.lhist_query,
            phist: e.phist,
        };
        self.pipeline.repair(e.pc, &hist, &e.metas, &e.pred);
        self.obs.note_repair();
        if e.phase == EntryPhase::Accepted {
            self.lhist.repair(e.pc, e.lhist_old, []);
            self.obs.note_lhist_repair();
        }
        self.stats.repair_entries += 1;
        self.trace(TraceEventKind::Repair, pc, None, None, None);
    }

    /// Walks and squashes every entry younger than `keep` (youngest first,
    /// so snapshot-style restores converge on the oldest pre-state), and
    /// records the repair-FSM busy time.
    fn squash_younger_with_repair(&mut self, keep: PacketId) {
        let victims = self.hf.younger_range(keep);
        let count = victims.end.saturating_sub(victims.start);
        for t in victims.rev() {
            self.repair_one(t);
            self.recycle_stage_bundles(t);
        }
        let removed = self.hf.discard_after(keep);
        debug_assert_eq!(removed as u64, count);
        self.last_repair_cycles = count.div_ceil(self.cfg.repair_width.max(1) as u64);
    }

    /// The packet leaves the fetch pipeline with its final,
    /// predecode-corrected `bundle`: `fire` events are broadcast, local
    /// history is speculatively updated, and the entry waits for backend
    /// resolution.
    ///
    /// The caller must have already [`revise`](Self::revise)d the packet if
    /// `bundle`'s history contribution differs from what was speculated.
    pub fn accept(&mut self, id: PacketId, bundle: PredictionBundle) {
        let Some(e) = self.hf.get_mut(id) else { return };
        debug_assert_eq!(e.phase, EntryPhase::Fetching, "double accept");
        if crate::sanitize::enabled() && e.phase != EntryPhase::Fetching {
            crate::sanitize::violation(&format!(
                "packet {id} accepted twice (already in the {:?} phase)",
                e.phase
            ));
        }
        e.phase = EntryPhase::Accepted;
        e.pred = bundle;
        let pc = e.pc;
        e.lhist_old = self.lhist.speculate(pc, bundle.history_bits());
        // Path history advances with the packet's taken redirection.
        if let Some((_, target)) = bundle.redirect() {
            self.phist.speculate(target);
        }
        let e = self.hf.get(id).expect("entry is live");
        self.scratch_hist.restore(&e.ghist);
        let hist = HistoryView {
            ghist: &self.scratch_hist,
            lhist: e.lhist_query,
            phist: e.phist,
        };
        self.pipeline.fire(pc, &hist, &e.metas, &bundle);
        self.obs.note_fire();
        self.recycle_stage_bundles(id);
        self.stats.accepts += 1;
        self.trace(TraceEventKind::Fire, pc, None, None, None);
    }

    /// The backend resolved one control-flow instruction of packet `id`.
    ///
    /// With `mispredicted`, the repair state machine runs: younger entries
    /// are squashed with repair events, the global and local histories are
    /// rewound to the corrected state, the `mispredict` fast update is
    /// broadcast, and the corrected fetch target is returned.
    #[allow(clippy::question_mark)] // symmetric with the other early outs
    pub fn resolve(
        &mut self,
        id: PacketId,
        res: SlotResolution,
        mispredicted: bool,
    ) -> Option<u64> {
        let Some(e) = self.hf.get_mut(id) else {
            return None;
        };
        if let Some(t) = e.truncated_at {
            if res.slot > t {
                return None; // stale wrong-path resolution
            }
        }
        e.record_resolution(res);
        if res.kind == BranchKind::Conditional {
            // counted at commit; nothing here
        }
        if !mispredicted {
            return None;
        }
        self.stats.mispredicts += 1;
        let e = self.hf.get_mut(id).expect("live");
        e.mispredicted_slot = Some(match e.mispredicted_slot {
            Some(s) => s.min(res.slot),
            None => res.slot,
        });
        e.truncated_at = Some(res.slot);
        e.resolutions.retain(|r| r.slot <= res.slot);

        // Charge the mispredict to the component whose prediction the
        // packet actually followed: a wrong direction blames the direction
        // provider, anything else (wrong/unknown target, wrong kind)
        // blames the target provider. An unattributed field falls to the
        // static pseudo-component — the packet followed the not-taken
        // fall-through no component predicted.
        let slot = res.slot as usize;
        let (predicted_taken, dir_provider, tgt_provider) = if slot < e.pred.width() as usize {
            let sp = e.pred.slot(slot);
            let pt = match sp.kind {
                Some(BranchKind::Conditional) => sp.taken == Some(true),
                Some(_) => true,
                None => false,
            };
            (
                pt,
                e.attr.provider(slot, DecisionField::Taken),
                e.attr.provider(slot, DecisionField::Target),
            )
        } else {
            (false, None, None)
        };
        let direction_miss = res.kind == BranchKind::Conditional && res.taken != predicted_taken;
        let blamed = if direction_miss {
            dir_provider
        } else {
            tgt_provider
        };
        let blamed_meta = blamed.map(|p| e.metas[p].0);
        let branch_pc = e.pc + res.slot as u64 * SLOT_BYTES;
        self.obs.note_blame(blamed, !direction_miss, branch_pc);

        // Squash younger entries with repair (youngest first).
        self.squash_younger_with_repair(id);

        // Rewind the global history to this packet's fetch state plus the
        // corrected outcomes up to and including the mispredicted slot.
        let e = self.hf.get(id).expect("live");
        let corrected = corrected_history_bits(e, res.slot);
        let (pc, lhist_q, lhist_old, phist_q) = (e.pc, e.lhist_query, e.lhist_old, e.phist);
        let accepted = e.phase == EntryPhase::Accepted;
        self.ghist.rewind_to(&e.ghist, corrected.iter().copied());
        self.obs.note_ghist_rewind();
        // Rewind the path history to this packet's fetch state and push the
        // resolved redirection.
        self.phist.restore(phist_q);
        if res.taken {
            self.phist.speculate(res.target);
        }
        if let Some(e) = self.hf.get_mut(id) {
            e.spec_bits = pack_bits(corrected.iter().copied());
        }
        if accepted {
            self.lhist.repair(pc, lhist_old, corrected.iter().copied());
            self.obs.note_lhist_repair();
        }

        // Fast mispredict update to the components.
        let e = self.hf.get(id).expect("live");
        self.scratch_hist.restore(&e.ghist);
        let hist = HistoryView {
            ghist: &self.scratch_hist,
            lhist: lhist_q,
            phist: phist_q,
        };
        let ev = UpdateEvent {
            pc,
            width: e.pred.width(),
            hist,
            meta: crate::types::Meta::ZERO,
            pred: &e.pred,
            resolutions: &e.resolutions,
            mispredicted_slot: Some(res.slot),
        };
        self.pipeline.mispredict(&ev, &e.metas);
        self.obs.note_mispredict_event();
        self.trace(
            TraceEventKind::Mispredict,
            branch_pc,
            blamed,
            Some(res.slot as usize),
            blamed_meta,
        );

        Some(if res.taken {
            res.target
        } else {
            pc + res.slot as u64 * SLOT_BYTES + SLOT_BYTES
        })
    }

    /// Retires the oldest packet: commit-time `update` events are issued
    /// and the entry is dequeued. Returns `None` when the front entry is
    /// still fetching (nothing to commit).
    pub fn commit_front(&mut self) -> Option<CommittedPacket> {
        match self.hf.front() {
            Some((_, e)) if e.phase == EntryPhase::Accepted => {}
            _ => return None,
        }
        let (_, e) = self.hf.pop_front().expect("checked front exists");
        self.scratch_hist.restore(&e.ghist);
        let hist = HistoryView {
            ghist: &self.scratch_hist,
            lhist: e.lhist_query,
            phist: e.phist,
        };
        let ev = UpdateEvent {
            pc: e.pc,
            width: e.pred.width(),
            hist,
            meta: crate::types::Meta::ZERO,
            pred: &e.pred,
            resolutions: &e.resolutions,
            mispredicted_slot: e.mispredicted_slot,
        };
        self.pipeline.update(&ev, &e.metas);
        self.obs.note_update();
        self.stats.commits += 1;
        self.stats.cond_branches += e
            .resolutions
            .iter()
            .filter(|r| r.kind == BranchKind::Conditional)
            .count() as u64;
        self.trace(
            TraceEventKind::Update,
            e.pc,
            None,
            e.mispredicted_slot.map(|s| s as usize),
            None,
        );
        // Recycle the retired entry's heap buffers for the next query.
        let HistoryFileEntry {
            pc,
            pred,
            resolutions,
            mispredicted_slot,
            mut metas,
            ghist,
            ..
        } = e;
        metas.clear();
        self.meta_pool.push(metas);
        self.snap_pool.push(ghist);
        Some(CommittedPacket {
            pc,
            pred,
            resolutions,
            mispredicted_slot,
        })
    }

    /// Full pipeline flush (exception / machine redirect): every in-flight
    /// entry is repaired and dropped and the speculative history rewinds to
    /// the oldest entry's fetch state.
    pub fn flush(&mut self) {
        if let Some((front, _)) = self.hf.front() {
            let front_entry = self.hf.get(front).expect("front is live");
            let snapshot = front_entry.ghist.clone();
            let phist_q = front_entry.phist;
            for t in self.hf.live_range().rev() {
                self.repair_one(t);
            }
            self.hf.discard_all();
            self.stage_bundles.clear();
            self.ghist.rewind_to(&snapshot, []);
            self.obs.note_ghist_rewind();
            self.phist.restore(phist_q);
        }
    }

    /// Per-component storage reports (Fig 8's sub-component bars).
    pub fn storage_by_component(&self) -> Vec<(String, StorageReport)> {
        self.pipeline.storage_by_component()
    }

    /// Per-component SRAM access counts for the energy model.
    pub fn accesses_by_component(&self) -> Vec<(String, Vec<crate::types::AccessReport>)> {
        self.pipeline.accesses_by_component()
    }

    /// Total SRAM port-budget violations across all components — zero for
    /// a design whose memories map to their declared macros.
    pub fn port_violations(&self) -> usize {
        self.pipeline.port_violations()
    }

    /// Per-component SRAM touched-row utilization, in the pipeline's
    /// dataflow (label) order: `(rows written since construction or
    /// restore, total rows)` summed over each component's memories.
    /// Flop-only components report `(0, 0)`.
    pub fn sram_utilization(&self) -> Vec<(u64, u64)> {
        self.accesses_by_component()
            .iter()
            .map(|(_, reports)| {
                reports.iter().fold((0u64, 0u64), |(touched, total), r| {
                    (touched + r.rows_touched, total + r.spec.entries)
                })
            })
            .collect()
    }

    /// Storage of the generated management structures — history file and
    /// history providers (Fig 8's "Meta" bar).
    pub fn meta_storage(&self) -> StorageReport {
        let mut r = self.hf.storage();
        r.merge(&self.ghist.storage());
        r.merge(&self.lhist.storage());
        r.merge(&self.phist.storage());
        r
    }

    /// Total predictor storage (components + management).
    pub fn total_storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        for (_, s) in self.storage_by_component() {
            r.merge(&s);
        }
        r.merge(&self.meta_storage());
        r
    }

    /// The pipeline's stage diagram (Fig 7).
    pub fn describe_pipeline(&self) -> Vec<crate::composer::pipeline::StageDescription> {
        self.pipeline.describe()
    }

    /// Borrow the speculative global history (test/diagnostic use).
    pub fn speculative_ghist(&self) -> &HistoryRegister {
        self.ghist.current()
    }

    /// The current speculative path history (test/diagnostic use).
    pub fn speculative_phist(&self) -> u64 {
        self.phist.current()
    }

    /// Number of live history-file entries.
    pub fn in_flight(&self) -> usize {
        self.hf.len()
    }

    /// Serializes the unit's complete warm state: every component's tables,
    /// the history providers, the history file of in-flight packets, the
    /// transient stage bundles, and the unit's own counters and
    /// attribution sink.
    ///
    /// Configuration (design, topology, widths) is *not* stored — the
    /// `.cbs` container carries it as identity metadata instead, and
    /// [`load_state`](Self::load_state) expects a unit built from the same
    /// design. Transient scratch registers and attached tracers are
    /// excluded: the former are recomputed per packet, the latter are host
    /// plumbing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.begin_section("bpu");
        self.save_front_state(w);
        self.pipeline.save_state(w);
        w.end_section();
    }

    /// Everything [`save_state`](Self::save_state) writes *except* the
    /// pipeline: cycle, counters, history providers, history file, stage
    /// bundles, and the attribution sink.
    fn save_front_state(&self, w: &mut StateWriter) {
        w.write_u64(self.cycle);
        w.write_u64(self.stats.queries);
        w.write_u64(self.stats.accepts);
        w.write_u64(self.stats.commits);
        w.write_u64(self.stats.cond_branches);
        w.write_u64(self.stats.mispredicts);
        w.write_u64(self.stats.revisions);
        w.write_u64(self.stats.repair_entries);
        w.write_u64(self.last_repair_cycles);
        self.ghist.save_state(w);
        self.lhist.save_state(w);
        self.phist.save_state(w);
        self.hf.save_state(w);
        self.stage_bundles.save_state(w, |w, bundles| {
            w.write_u64(bundles.len() as u64);
            for b in bundles {
                b.save_state(w);
            }
        });
        self.obs.save_state(w);
    }

    /// Restores state written by [`save_state`](Self::save_state) into a
    /// unit built from the same design.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the payload is malformed or was
    /// written by a pipeline with different node labels or table shapes.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        r.open_section("bpu")?;
        self.host_baseline = None;
        self.load_front_state(r)?;
        self.pipeline.load_state(r)?;
        r.close_section()
    }

    fn load_front_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.cycle = r.read_u64("bpu cycle")?;
        self.stats.queries = r.read_u64("bpu queries")?;
        self.stats.accepts = r.read_u64("bpu accepts")?;
        self.stats.commits = r.read_u64("bpu commits")?;
        self.stats.cond_branches = r.read_u64("bpu cond branches")?;
        self.stats.mispredicts = r.read_u64("bpu mispredicts")?;
        self.stats.revisions = r.read_u64("bpu revisions")?;
        self.stats.repair_entries = r.read_u64("bpu repair entries")?;
        self.last_repair_cycles = r.read_u64("bpu last repair cycles")?;
        self.ghist.load_state(r)?;
        self.lhist.load_state(r)?;
        self.phist.load_state(r)?;
        self.hf.load_state(r)?;
        let depth = crate::composer::pipeline::MAX_DEPTH as u64;
        self.stage_bundles.load_state(r, |r| {
            let n = r.read_u64_capped("stage bundle count", depth)?;
            let mut bundles = Vec::with_capacity(n as usize);
            for _ in 0..n {
                bundles.push(PredictionBundle::load_state(r)?);
            }
            Ok(bundles)
        })?;
        self.obs.load_state(r)?;
        Ok(())
    }

    /// Arms a fast-reset baseline at the current state: front-end state is
    /// serialized to an in-memory buffer (it is small — histories, counters,
    /// in-flight bundles), and every pipeline component arms dirty-row
    /// tracking so [`reset_to_baseline`](Self::reset_to_baseline) touches
    /// only mutated SRAM rows instead of reloading full tables.
    pub fn arm_baseline(&mut self) {
        let mut w = StateWriter::new();
        w.begin_section("bpu-front");
        self.save_front_state(&mut w);
        w.end_section();
        self.host_baseline = Some(w.finish());
        self.pipeline.arm_baseline();
    }

    /// `true` when [`arm_baseline`](Self::arm_baseline) has been called and
    /// no full [`load_state`](Self::load_state) has disarmed it since.
    pub fn baseline_armed(&self) -> bool {
        self.host_baseline.is_some() && self.pipeline.baseline_armed()
    }

    /// Restores the unit to the armed baseline. The baseline stays armed
    /// for the next rerun.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if a fallback payload fails to decode.
    ///
    /// # Panics
    ///
    /// Panics if no baseline is armed.
    pub fn reset_to_baseline(&mut self) -> Result<(), SnapError> {
        let bytes = self
            .host_baseline
            .take()
            .expect("reset_to_baseline without an armed baseline");
        let mut r = StateReader::new(&bytes);
        r.open_section("bpu-front")?;
        self.load_front_state(&mut r)?;
        r.close_section()?;
        self.host_baseline = Some(bytes);
        self.pipeline.reset_to_baseline()
    }

    /// Overrides the `COBRA_PLAN` gate in-process: `true` forces the
    /// compiled-plan packet path, `false` the reference interpreter.
    pub fn force_plan(&mut self, enabled: bool) {
        self.pipeline.force_plan(enabled);
    }

    /// Whether the compiled execution plan drives the packet path.
    pub fn plan_enabled(&self) -> bool {
        self.pipeline.plan_enabled()
    }

    /// Test hook: arms or disarms the pipeline's per-node self-profiler
    /// in-process, independent of the `COBRA_PROFILE` gate.
    #[doc(hidden)]
    pub fn force_profiler(&mut self, enabled: bool) {
        self.pipeline.force_profiler(enabled);
    }

    /// The self-profiler's rendered per-node table, if armed and at least
    /// one packet was sampled.
    pub fn profile_report(&self) -> Option<String> {
        self.pipeline.profile_report()
    }
}

impl std::fmt::Debug for BranchPredictorUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BranchPredictorUnit")
            .field("design", &self.design_name)
            .field("depth", &self.depth())
            .field("in_flight", &self.in_flight())
            .field("stats", &self.stats)
            .finish()
    }
}

/// The corrected history contribution of a packet after its slot
/// `mispredicted_slot` resolved: resolved outcomes where known, predicted
/// directions otherwise, for conditional slots up to and including the
/// mispredicted one.
fn corrected_history_bits(e: &HistoryFileEntry, mispredicted_slot: u8) -> Vec<bool> {
    let mut out = Vec::new();
    for i in 0..=mispredicted_slot.min(e.pred.width() - 1) {
        if e.pred.slot(i as usize).kind == Some(BranchKind::Conditional)
            || e.resolutions
                .iter()
                .any(|r| r.slot == i && r.kind == BranchKind::Conditional)
        {
            let bit = e
                .resolutions
                .iter()
                .find(|r| r.slot == i)
                .map(|r| r.taken)
                .or_else(|| e.pred.slot(i as usize).taken)
                .unwrap_or(false);
            out.push(bit);
            if bit && i < mispredicted_slot {
                break; // an older taken branch ends the packet
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs;

    fn build(design: &Design) -> BranchPredictorUnit {
        BranchPredictorUnit::build(
            design,
            BpuConfig {
                fetch_width: 4,
                history_file_entries: 8,
                ..BpuConfig::default()
            },
        )
        .expect("valid design")
    }

    fn cond_res(slot: u8, taken: bool, target: u64) -> SlotResolution {
        SlotResolution {
            slot,
            kind: BranchKind::Conditional,
            taken,
            target,
        }
    }

    #[test]
    fn builds_all_three_paper_designs() {
        for d in [designs::tage_l(), designs::b2(), designs::tournament()] {
            let bpu = build(&d);
            assert_eq!(bpu.depth(), 3, "{}", d.name);
        }
    }

    #[test]
    fn query_accept_resolve_commit_roundtrip() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let id = bpu.query(0x1000).unwrap();
        bpu.speculate(id, 1);
        let final_pred = *bpu.prediction(id, 3).unwrap();
        bpu.accept(id, final_pred);
        bpu.resolve(id, cond_res(0, true, 0x2000), true);
        let committed = bpu.commit_front().expect("accepted entry commits");
        assert_eq!(committed.pc, 0x1000);
        assert_eq!(committed.mispredicted_slot, Some(0));
        assert_eq!(bpu.stats().commits, 1);
        assert_eq!(bpu.stats().mispredicts, 1);
    }

    #[test]
    fn history_file_backpressure() {
        let d = designs::b2();
        let mut bpu = build(&d);
        for i in 0..8 {
            assert!(bpu.query(0x1000 + i * 16).is_some());
        }
        assert!(!bpu.can_query());
        assert!(bpu.query(0x9000).is_none());
    }

    #[test]
    fn mispredict_squashes_younger_and_rewinds_history() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let pa = *bpu.prediction(a, 3).unwrap();
        bpu.accept(a, pa);
        // Younger speculative packets.
        let b = bpu.query(0x1010).unwrap();
        bpu.speculate(b, 1);
        let c = bpu.query(0x1020).unwrap();
        bpu.speculate(c, 1);
        assert_eq!(bpu.in_flight(), 3);
        let redirect = bpu.resolve(a, cond_res(1, true, 0x4000), true);
        assert_eq!(redirect, Some(0x4000));
        assert_eq!(bpu.in_flight(), 1, "younger packets squashed");
        // The corrected history ends with the resolved taken bit.
        assert!(bpu.speculative_ghist().bit(0));
    }

    #[test]
    fn not_taken_mispredict_redirects_to_fallthrough() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let pa = *bpu.prediction(a, 3).unwrap();
        bpu.accept(a, pa);
        let redirect = bpu.resolve(a, cond_res(2, false, 0), true);
        assert_eq!(redirect, Some(0x1000 + 2 * 2 + 2));
    }

    #[test]
    fn commit_requires_accept() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let _ = bpu.query(0x1000).unwrap();
        assert!(bpu.commit_front().is_none(), "fetching entry cannot commit");
    }

    #[test]
    fn revise_changes_history_contribution() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1); // cold: no predicted branches, no bits
                             // Predecode discovers a not-taken conditional branch at slot 0.
        let mut corrected = *bpu.prediction(a, 3).unwrap();
        corrected.slot_mut(0).kind = Some(BranchKind::Conditional);
        corrected.slot_mut(0).taken = Some(false);
        bpu.revise(a, &corrected, false);
        let e_bits: Vec<bool> = (0..1).map(|_| bpu.speculative_ghist().bit(0)).collect();
        assert_eq!(e_bits, vec![false]);
        assert_eq!(bpu.stats().revisions, 1);
    }

    #[test]
    fn revise_with_replay_squashes_younger() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let _b = bpu.query(0x1010).unwrap();
        let _c = bpu.query(0x1020).unwrap();
        let corrected = *bpu.prediction(a, 3).unwrap();
        bpu.revise(a, &corrected, true);
        assert_eq!(bpu.in_flight(), 1);
        assert!(bpu.last_repair_cycles >= 1);
    }

    #[test]
    fn revise_without_replay_keeps_younger() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let b = bpu.query(0x1010).unwrap();
        bpu.speculate(b, 1);
        let corrected = *bpu.prediction(a, 3).unwrap();
        bpu.revise(a, &corrected, false);
        assert_eq!(bpu.in_flight(), 2, "younger packet survives");
    }

    #[test]
    fn flush_empties_and_restores_history() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let before = bpu.speculative_ghist().clone();
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        // Force some history bits in via a revision.
        let mut pred = *bpu.prediction(a, 3).unwrap();
        pred.slot_mut(0).kind = Some(BranchKind::Conditional);
        pred.slot_mut(0).taken = Some(true);
        bpu.revise(a, &pred, false);
        bpu.flush();
        assert_eq!(bpu.in_flight(), 0);
        assert_eq!(*bpu.speculative_ghist(), before);
    }

    #[test]
    fn stale_wrong_path_resolutions_are_dropped() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let pa = *bpu.prediction(a, 3).unwrap();
        bpu.accept(a, pa);
        bpu.resolve(a, cond_res(1, true, 0x4000), true);
        // A later (wrong-path) resolution for slot 3 must be ignored.
        bpu.resolve(a, cond_res(3, false, 0), false);
        let committed = bpu.commit_front().unwrap();
        assert!(committed.resolutions.iter().all(|r| r.slot <= 1));
    }

    #[test]
    fn meta_storage_nonzero_and_scales_with_design() {
        let tourney = build(&designs::tournament());
        let b2 = build(&designs::b2());
        // The Tournament design has local histories; its Meta cost must
        // exceed B2's (the paper's Fig 8 shows exactly this).
        assert!(
            tourney.meta_storage().total_bits() > b2.meta_storage().total_bits(),
            "tournament meta {} <= b2 meta {}",
            tourney.meta_storage().total_bits(),
            b2.meta_storage().total_bits()
        );
    }

    #[test]
    fn commit_counts_cond_branches() {
        let d = designs::b2();
        let mut bpu = build(&d);
        let a = bpu.query(0x1000).unwrap();
        bpu.speculate(a, 1);
        let pa = *bpu.prediction(a, 3).unwrap();
        bpu.accept(a, pa);
        bpu.resolve(a, cond_res(0, false, 0), false);
        bpu.resolve(a, cond_res(2, true, 0x8000), false);
        bpu.commit_front().unwrap();
        assert_eq!(bpu.stats().cond_branches, 2);
    }

    fn drive(bpu: &mut BranchPredictorUnit, pcs: std::ops::Range<u64>) {
        for i in pcs {
            let pc = 0x1000 + i * 0x40;
            let id = bpu.query(pc).unwrap();
            bpu.speculate(id, 1);
            let pred = *bpu.prediction(id, 3).unwrap();
            bpu.accept(id, pred);
            bpu.resolve(id, cond_res(0, i % 3 == 0, pc + 0x200), true);
            bpu.commit_front().unwrap();
            bpu.tick();
        }
    }

    fn snapshot(bpu: &BranchPredictorUnit) -> Vec<u8> {
        let mut w = StateWriter::new();
        bpu.save_state(&mut w);
        w.finish()
    }

    #[test]
    fn baseline_reset_restores_full_unit_state() {
        for d in [designs::tage_l(), designs::b2(), designs::tournament()] {
            let mut bpu = build(&d);
            drive(&mut bpu, 0..40);
            let before = snapshot(&bpu);
            bpu.arm_baseline();
            assert!(bpu.baseline_armed());
            drive(&mut bpu, 40..90);
            assert_ne!(snapshot(&bpu), before, "driving must change state");
            bpu.reset_to_baseline().unwrap();
            assert_eq!(
                snapshot(&bpu),
                before,
                "{}: dirty reset must be byte-identical to the armed state",
                d.name
            );
            // The baseline stays armed: a second rerun resets again.
            drive(&mut bpu, 90..120);
            bpu.reset_to_baseline().unwrap();
            assert_eq!(snapshot(&bpu), before);
        }
    }

    #[test]
    fn full_restore_disarms_baseline() {
        let d = designs::b2();
        let mut bpu = build(&d);
        bpu.arm_baseline();
        let bytes = snapshot(&bpu);
        let mut r = StateReader::new(&bytes);
        bpu.load_state(&mut r).unwrap();
        assert!(!bpu.baseline_armed());
    }
}
