//! The COBRA predictor composer (paper Section IV).
//!
//! The composer turns a *topological description* of a predictor — an
//! ordering of sub-components such as `LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1`
//! — into a complete predictor pipeline, and generates the *management
//! structures* that maintain predictor state through speculation:
//!
//! * [`Topology`] — the ordering AST and its text notation parser;
//! * [`ComponentRegistry`] / [`Design`] — name → component factories and a
//!   packaged design (topology + registry + history parameters);
//! * [`PredictorPipeline`] — the compiled pipeline: per-stage composition
//!   of component responses with pass-through and override semantics;
//! * [`ComponentKind`] / [`ExecutionPlan`] — the devirtualized packet
//!   path: enum dispatch over the stock components plus precomputed
//!   per-stage fold schedules (`COBRA_PLAN=off` selects the reference
//!   interpreter);
//! * [`HistoryFile`] — the circular buffer tracking in-flight predictions,
//!   their history snapshots and per-component metadata;
//! * [`GlobalHistoryProvider`] / [`LocalHistoryProvider`] — speculatively
//!   updated history state with snapshot repair;
//! * [`BranchPredictorUnit`] — the drop-in unit a host core instantiates,
//!   tying all of the above together with the repair state machine.

mod bpu;
mod history_file;
mod pipeline;
mod plan;
mod providers;
mod registry;
mod topology;

pub use bpu::{
    BpuConfig, BpuStats, BranchPredictorUnit, CommittedPacket, GhistRepairMode, PacketId,
};
pub use history_file::{HistoryFile, HistoryFileEntry};
pub(crate) use pipeline::NodeFacts;
pub use pipeline::{
    plan_env_enabled, PacketPrediction, PredictorPipeline, StageDescription, MAX_DEPTH,
};
pub use plan::{ComponentKind, ExecutionPlan};
pub use providers::{GlobalHistoryProvider, LocalHistoryProvider, PathHistoryProvider};
pub use registry::{ComponentRegistry, Design};
pub use topology::Topology;
