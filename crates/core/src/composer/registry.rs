//! Component factories and packaged designs.

use crate::iface::Component;
use std::collections::HashMap;
use std::fmt;

type Factory = Box<dyn Fn(u8) -> Box<dyn Component> + Send + Sync>;

/// Maps topology component names (e.g. `"TAGE3"`) to factories that build
/// the corresponding sub-component for a given fetch width.
///
/// A registry is the user's point of control over component
/// parameterization: the same topology string elaborates differently under
/// different registries, mirroring how the paper's Chisel composer is
/// driven by constructed `Module` instances (Fig 5).
#[derive(Default)]
pub struct ComponentRegistry {
    factories: HashMap<String, Factory>,
}

impl ComponentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory under `name`. Re-registering a name replaces the
    /// previous factory.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u8) -> Box<dyn Component> + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(name.into(), Box::new(factory));
        self
    }

    /// Builds the component registered under `name` for `width`-slot
    /// packets, or `None` if the name is unknown.
    pub fn build(&self, name: &str, width: u8) -> Option<Box<dyn Component>> {
        self.factories.get(name).map(|f| f(width))
    }

    /// Registered names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        f.debug_struct("ComponentRegistry")
            .field("names", &names)
            .finish()
    }
}

/// A complete predictor design: a topology, the registry that elaborates
/// it, and the history-provider parameters (Table I's per-design history
/// configuration).
pub struct Design {
    /// Human-readable design name (e.g. `"TAGE-L"`).
    pub name: String,
    /// Topology in the paper's notation.
    pub topology: String,
    /// Component factories for every name in the topology.
    pub registry: ComponentRegistry,
    /// Global-history register width in bits.
    pub ghist_bits: u32,
    /// Local-history table entries (0 disables the local provider even if a
    /// component asks for local bits).
    pub lhist_entries: u64,
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .field("ghist_bits", &self.ghist_bits)
            .field("lhist_entries", &self.lhist_entries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Hbim, HbimConfig};

    fn registry_with_bim() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        r.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(1024, w))));
        r
    }

    #[test]
    fn builds_registered_component() {
        let r = registry_with_bim();
        let c = r.build("BIM2", 4).expect("registered");
        assert_eq!(c.kind(), "bim");
        assert_eq!(c.latency(), 2);
    }

    #[test]
    fn unknown_name_is_none() {
        let r = registry_with_bim();
        assert!(r.build("NOPE", 4).is_none());
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = registry_with_bim();
        r.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(4096, w))));
        let c = r.build("BIM2", 4).unwrap();
        assert_eq!(c.storage().total_bits(), 4096 * 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn debug_lists_names() {
        let r = registry_with_bim();
        let s = format!("{r:?}");
        assert!(s.contains("BIM2"));
    }
}
