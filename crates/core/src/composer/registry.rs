//! Component factories and packaged designs.

use crate::composer::plan::ComponentKind;
use crate::error::{ComposeError, Span};
use crate::iface::Component;
use std::collections::HashMap;
use std::fmt;

type Factory = Box<dyn Fn(u8) -> ComponentKind + Send + Sync>;

/// Maps topology component names (e.g. `"TAGE3"`) to factories that build
/// the corresponding sub-component for a given fetch width.
///
/// A registry is the user's point of control over component
/// parameterization: the same topology string elaborates differently under
/// different registries, mirroring how the paper's Chisel composer is
/// driven by constructed `Module` instances (Fig 5).
///
/// Stock components registered through [`register_kind`](Self::register_kind)
/// elaborate to monomorphized [`ComponentKind`] variants and take the
/// devirtualized packet path; boxed components registered through
/// [`register`](Self::register) ride the [`ComponentKind::Custom`] escape
/// variant with identical semantics.
#[derive(Default)]
pub struct ComponentRegistry {
    factories: HashMap<String, Factory>,
}

impl ComponentRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a boxed-component factory under `name`. Re-registering a
    /// name replaces the previous factory.
    ///
    /// The component elaborates as [`ComponentKind::Custom`]; stock
    /// components should prefer [`register_kind`](Self::register_kind) so
    /// the packet path dispatches on the enum instead of a vtable.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u8) -> Box<dyn Component> + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(
            name.into(),
            Box::new(move |w| ComponentKind::Custom(factory(w))),
        );
        self
    }

    /// Registers a monomorphized factory under `name` (e.g.
    /// `|w| Hbim::new(cfg(w)).into()`). Re-registering a name replaces the
    /// previous factory.
    pub fn register_kind(
        &mut self,
        name: impl Into<String>,
        factory: impl Fn(u8) -> ComponentKind + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories.insert(name.into(), Box::new(factory));
        self
    }

    /// Builds the component registered under `name` for `width`-slot
    /// packets.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::UnknownComponent`] carrying `name` and
    /// `span` (the name's location in the topology text, when the caller
    /// has one) if nothing is registered under `name` — the same
    /// diagnostic shape the parser and analyzer produce.
    pub fn build(
        &self,
        name: &str,
        width: u8,
        span: Option<Span>,
    ) -> Result<ComponentKind, ComposeError> {
        self.factories
            .get(name)
            .map(|f| f(width))
            .ok_or_else(|| ComposeError::UnknownComponent {
                name: name.into(),
                span,
            })
    }

    /// Registered names, unordered.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Number of registered factories.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.names().collect();
        names.sort_unstable();
        f.debug_struct("ComponentRegistry")
            .field("names", &names)
            .finish()
    }
}

/// A complete predictor design: a topology, the registry that elaborates
/// it, and the history-provider parameters (Table I's per-design history
/// configuration).
pub struct Design {
    /// Human-readable design name (e.g. `"TAGE-L"`).
    pub name: String,
    /// Topology in the paper's notation.
    pub topology: String,
    /// Component factories for every name in the topology.
    pub registry: ComponentRegistry,
    /// Global-history register width in bits.
    pub ghist_bits: u32,
    /// Local-history table entries (0 disables the local provider even if a
    /// component asks for local bits).
    pub lhist_entries: u64,
}

impl fmt::Debug for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Design")
            .field("name", &self.name)
            .field("topology", &self.topology)
            .field("ghist_bits", &self.ghist_bits)
            .field("lhist_entries", &self.lhist_entries)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Hbim, HbimConfig};

    fn registry_with_bim() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        r.register_kind("BIM2", |w| Hbim::new(HbimConfig::bim(1024, w)).into());
        r
    }

    #[test]
    fn builds_registered_component() {
        let r = registry_with_bim();
        let c = r.build("BIM2", 4, None).expect("registered");
        assert_eq!(c.kind(), "bim");
        assert_eq!(c.latency(), 2);
        assert!(!c.is_custom());
    }

    #[test]
    fn unknown_name_is_precise_error() {
        let r = registry_with_bim();
        let span = Span::new(3, 7);
        let e = r.build("NOPE", 4, Some(span)).unwrap_err();
        match &e {
            ComposeError::UnknownComponent { name, span: s } => {
                assert_eq!(name, "NOPE");
                assert_eq!(*s, Some(span));
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert_eq!(e.span(), Some(span));
        assert_eq!(e.to_string(), "unknown component name `NOPE`");
    }

    #[test]
    fn boxed_register_is_custom() {
        let mut r = ComponentRegistry::new();
        r.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(1024, w))));
        let c = r.build("BIM2", 4, None).unwrap();
        assert!(c.is_custom());
        assert_eq!(c.kind(), "bim");
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = registry_with_bim();
        r.register_kind("BIM2", |w| Hbim::new(HbimConfig::bim(4096, w)).into());
        let c = r.build("BIM2", 4, None).unwrap();
        assert_eq!(c.storage().total_bits(), 4096 * 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn debug_lists_names() {
        let r = registry_with_bim();
        let s = format!("{r:?}");
        assert!(s.contains("BIM2"));
    }
}
