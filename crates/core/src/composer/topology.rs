//! The topological representation of a predictor design (Section IV-A).
//!
//! A topology is an ordering of sub-components: `a > b` means `a` provides
//! the final prediction whenever it is ambiguous (i.e. `a` overrides `b`),
//! and an arbitration node `SEL > [x, y]` means `SEL` chooses among the
//! sub-topologies `x` and `y`. The notation used in the paper parses
//! directly:
//!
//! ```
//! use cobra_core::composer::Topology;
//!
//! let t = Topology::parse("LOOP3 > TOURNEY3 > [GBIM2 > BTB2, LBIM2]")?;
//! assert_eq!(t.component_names(), vec!["LOOP3", "TOURNEY3", "GBIM2", "BTB2", "LBIM2"]);
//! # Ok::<(), cobra_core::ComposeError>(())
//! ```
//!
//! Every parse error carries a [`Span`] pointing at the offending byte
//! range, and [`Topology::parse_spanned`] additionally returns the span of
//! each component name (in [`Topology::component_names`] order) so
//! diagnostics can point back into the source text.

use crate::error::{ComposeError, Span};
use std::fmt;

/// A predictor topology: the ordering of sub-components that defines which
/// component provides the final prediction at each pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A single named sub-component.
    Leaf(String),
    /// `Over(a, b)`: `a` overrides `b`; `b`'s output feeds `a`'s
    /// `predict_in`.
    Over(Box<Topology>, Box<Topology>),
    /// An arbitration scheme choosing among several sub-topologies.
    Arbiter {
        /// The selecting component's name.
        selector: String,
        /// The competing sub-topologies, in `predict_in` port order.
        inputs: Vec<Topology>,
    },
}

impl Topology {
    /// Parses the paper's topology notation.
    ///
    /// Grammar (whitespace-insensitive):
    ///
    /// ```text
    /// expr  := unit ('>' (list | expr))?
    /// unit  := NAME | '(' expr ')'
    /// list  := '[' expr (',' expr)* ']'
    /// ```
    ///
    /// `NAME > [..]` forms an arbiter; `>` is right-associative, so
    /// `A > B > C` is `A > (B > C)`.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::Parse`] on malformed input; the error's
    /// `span` field covers the offending byte range of `text`.
    pub fn parse(text: &str) -> Result<Self, ComposeError> {
        Self::parse_spanned(text).map(|(t, _)| t)
    }

    /// Parses like [`parse`](Self::parse) but also returns the byte span of
    /// each component name, in the same order as
    /// [`component_names`](Self::component_names).
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::Parse`] on malformed input.
    pub fn parse_spanned(text: &str) -> Result<(Self, Vec<Span>), ComposeError> {
        let tokens = tokenize(text)?;
        // NAME tokens appear in the token stream in textual order, which is
        // exactly `component_names` order (override order visits the chain
        // left-to-right and an arbiter's selector before its arms).
        let name_spans: Vec<Span> = tokens
            .iter()
            .filter(|t| matches!(t.tok, Token::Name(_)))
            .map(|t| t.span)
            .collect();
        let mut p = Parser {
            tokens,
            pos: 0,
            eof: text.len(),
        };
        let (t, _) = p.parse_expr()?;
        if let Some(stray) = p.peek_spanned() {
            return Err(ComposeError::Parse {
                reason: format!("unexpected trailing input `{}`", stray.tok.describe()),
                span: stray.span,
            });
        }
        Ok((t, name_spans))
    }

    /// All component names in override order (stronger first, arbiter
    /// inputs in port order).
    pub fn component_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Topology::Leaf(n) => out.push(n),
            Topology::Over(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Topology::Arbiter { selector, inputs } => {
                out.push(selector);
                for i in inputs {
                    i.collect_names(out);
                }
            }
        }
    }

    /// Number of sub-components in the topology.
    pub fn len(&self) -> usize {
        self.component_names().len()
    }

    /// `false`: a topology always contains at least one component.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Leaf(n) => f.write_str(n),
            Topology::Over(a, b) => {
                // Parenthesize a left operand that is itself a chain.
                match **a {
                    Topology::Leaf(_) | Topology::Arbiter { .. } => write!(f, "{a} > {b}"),
                    _ => write!(f, "({a}) > {b}"),
                }
            }
            Topology::Arbiter { selector, inputs } => {
                write!(f, "{selector} > [")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    Gt,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Name(n) => n.clone(),
            Token::Gt => ">".into(),
            Token::LParen => "(".into(),
            Token::RParen => ")".into(),
            Token::LBracket => "[".into(),
            Token::RBracket => "]".into(),
            Token::Comma => ",".into(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct SpannedToken {
    tok: Token,
    span: Span,
}

fn tokenize(text: &str) -> Result<Vec<SpannedToken>, ComposeError> {
    let mut tokens = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some(&(at, c)) = chars.peek() {
        let simple = |tok| SpannedToken {
            tok,
            span: Span::new(at, at + c.len_utf8()),
        };
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '>' => {
                chars.next();
                tokens.push(simple(Token::Gt));
            }
            '(' => {
                chars.next();
                tokens.push(simple(Token::LParen));
            }
            ')' => {
                chars.next();
                tokens.push(simple(Token::RParen));
            }
            '[' => {
                chars.next();
                tokens.push(simple(Token::LBracket));
            }
            ']' => {
                chars.next();
                tokens.push(simple(Token::RBracket));
            }
            ',' => {
                chars.next();
                tokens.push(simple(Token::Comma));
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let start = at;
                let mut end = at;
                let mut name = String::new();
                while let Some(&(i, c)) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        name.push(c);
                        end = i + c.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(SpannedToken {
                    tok: Token::Name(name),
                    span: Span::new(start, end),
                });
            }
            other => {
                return Err(ComposeError::Parse {
                    reason: format!("unexpected character `{other}`"),
                    span: Span::new(at, at + other.len_utf8()),
                })
            }
        }
    }
    if tokens.is_empty() {
        return Err(ComposeError::Parse {
            reason: "empty topology".into(),
            span: Span::new(0, text.len()),
        });
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek_spanned(&self) -> Option<&SpannedToken> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Span to report when the input ends too early.
    fn eof_span(&self) -> Span {
        Span::point(self.eof)
    }

    fn expect(&mut self, want: Token) -> Result<Span, ComposeError> {
        match self.next() {
            Some(t) if t.tok == want => Ok(t.span),
            Some(t) => Err(ComposeError::Parse {
                reason: format!(
                    "expected `{}`, found `{}`",
                    want.describe(),
                    t.tok.describe()
                ),
                span: t.span,
            }),
            None => Err(ComposeError::Parse {
                reason: format!("expected `{}`, found end of input", want.describe()),
                span: self.eof_span(),
            }),
        }
    }

    fn parse_expr(&mut self) -> Result<(Topology, Span), ComposeError> {
        let (left, left_span) = self.parse_unit()?;
        if self.peek() == Some(&Token::Gt) {
            self.next();
            if self.peek() == Some(&Token::LBracket) {
                let selector = match left {
                    Topology::Leaf(n) => n,
                    other => {
                        return Err(ComposeError::Parse {
                            reason: format!(
                                "arbiter selector must be a single component, found `{other}`"
                            ),
                            span: left_span,
                        })
                    }
                };
                let (inputs, list_span) = self.parse_list()?;
                let span = Span::new(left_span.start, list_span.end);
                return Ok((Topology::Arbiter { selector, inputs }, span));
            }
            let (right, right_span) = self.parse_expr()?;
            let span = Span::new(left_span.start, right_span.end);
            return Ok((Topology::Over(Box::new(left), Box::new(right)), span));
        }
        Ok((left, left_span))
    }

    fn parse_unit(&mut self) -> Result<(Topology, Span), ComposeError> {
        match self.next() {
            Some(SpannedToken {
                tok: Token::Name(n),
                span,
            }) => Ok((Topology::Leaf(n), span)),
            Some(SpannedToken {
                tok: Token::LParen,
                span,
            }) => {
                let (inner, _) = self.parse_expr()?;
                let close = self.expect(Token::RParen)?;
                Ok((inner, Span::new(span.start, close.end)))
            }
            Some(t) => Err(ComposeError::Parse {
                reason: format!(
                    "expected a component name or `(`, found `{}`",
                    t.tok.describe()
                ),
                span: t.span,
            }),
            None => Err(ComposeError::Parse {
                reason: "expected a component name or `(`, found end of input".into(),
                span: self.eof_span(),
            }),
        }
    }

    fn parse_list(&mut self) -> Result<(Vec<Topology>, Span), ComposeError> {
        let open = self.expect(Token::LBracket)?;
        let mut items = vec![self.parse_expr()?.0];
        let close;
        loop {
            match self.next() {
                Some(SpannedToken {
                    tok: Token::Comma, ..
                }) => items.push(self.parse_expr()?.0),
                Some(SpannedToken {
                    tok: Token::RBracket,
                    span,
                }) => {
                    close = span;
                    break;
                }
                Some(t) => {
                    return Err(ComposeError::Parse {
                        reason: format!("expected `,` or `]`, found `{}`", t.tok.describe()),
                        span: t.span,
                    })
                }
                None => {
                    return Err(ComposeError::Parse {
                        reason: "unclosed `[`: expected `,` or `]`, found end of input".into(),
                        span: open,
                    })
                }
            }
        }
        let span = Span::new(open.start, close.end);
        if items.len() < 2 {
            return Err(ComposeError::Parse {
                reason: "an arbiter needs at least two inputs".into(),
                span,
            });
        }
        Ok((items, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_chain() {
        let t = Topology::parse("GTAG3 > BTB2 > BIM2").unwrap();
        assert_eq!(t.component_names(), vec!["GTAG3", "BTB2", "BIM2"]);
        match &t {
            Topology::Over(a, _) => assert_eq!(**a, Topology::Leaf("GTAG3".into())),
            _ => panic!("expected a chain"),
        }
    }

    #[test]
    fn chain_is_right_associative() {
        let t = Topology::parse("A > B > C").unwrap();
        let expect = Topology::Over(
            Box::new(Topology::Leaf("A".into())),
            Box::new(Topology::Over(
                Box::new(Topology::Leaf("B".into())),
                Box::new(Topology::Leaf("C".into())),
            )),
        );
        assert_eq!(t, expect);
    }

    #[test]
    fn parses_paper_tage_l_topology() {
        let t = Topology::parse("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1").unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn parses_arbiter() {
        let t = Topology::parse("TOURNEY3 > [GHT2, LHT2]").unwrap();
        match &t {
            Topology::Arbiter { selector, inputs } => {
                assert_eq!(selector, "TOURNEY3");
                assert_eq!(inputs.len(), 2);
            }
            _ => panic!("expected arbiter"),
        }
    }

    #[test]
    fn parses_nested_arbiter_operands() {
        let t = Topology::parse("TOURNEY3 > [GBIM2 > BTB2, LBIM2]").unwrap();
        assert_eq!(
            t.component_names(),
            vec!["TOURNEY3", "GBIM2", "BTB2", "LBIM2"]
        );
    }

    #[test]
    fn parses_loop_over_arbiter() {
        let t = Topology::parse("LOOP3 > TOURNEY3 > [GHT2, LHT2]").unwrap();
        match &t {
            Topology::Over(a, b) => {
                assert_eq!(**a, Topology::Leaf("LOOP3".into()));
                assert!(matches!(**b, Topology::Arbiter { .. }));
            }
            _ => panic!("expected loop over arbiter"),
        }
    }

    #[test]
    fn parses_parenthesized_operand_inside_list() {
        let t = Topology::parse("TOURNEY3 > [(LOOP2 > GHT2), LHT2]").unwrap();
        assert_eq!(
            t.component_names(),
            vec!["TOURNEY3", "LOOP2", "GHT2", "LHT2"]
        );
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
            "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
            "LOOP3 > TOURNEY3 > [GHT2, LHT2]",
        ] {
            let t = Topology::parse(s).unwrap();
            let t2 = Topology::parse(&t.to_string()).unwrap();
            assert_eq!(t, t2, "round-trip failed for {s}");
        }
    }

    #[test]
    fn spanned_names_match_component_order() {
        let text = "TOURNEY3 > [GBIM2 > BTB2, LBIM2]";
        let (t, spans) = Topology::parse_spanned(text).unwrap();
        let names = t.component_names();
        assert_eq!(names.len(), spans.len());
        for (name, span) in names.iter().zip(&spans) {
            assert_eq!(&&text[span.start..span.end], name);
        }
    }

    #[test]
    fn rejects_single_input_arbiter() {
        let e = Topology::parse("T3 > [A2]").unwrap_err();
        assert!(matches!(e, ComposeError::Parse { .. }));
        // The span covers the whole bracket list.
        assert_eq!(e.span(), Some(Span::new(5, 9)));
    }

    #[test]
    fn rejects_unbalanced_bracket_with_span_of_open() {
        let text = "T3 > [A2, B2";
        let e = Topology::parse(text).unwrap_err();
        match e {
            ComposeError::Parse { reason, span } => {
                assert!(reason.contains("unclosed `[`"), "reason: {reason}");
                assert_eq!(span, Span::new(5, 6), "span must point at the `[`");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_arm_with_span() {
        // `]` directly after the comma: the empty arm's "unit" is the `]`.
        let text = "T3 > [A2, ]";
        let e = Topology::parse(text).unwrap_err();
        match e {
            ComposeError::Parse { reason, span } => {
                assert!(reason.contains("expected a component name"), "{reason}");
                assert_eq!(span, Span::new(10, 11), "span must point at the `]`");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_gt_with_eof_span() {
        let text = "A2 > B2 >";
        let e = Topology::parse(text).unwrap_err();
        match e {
            ComposeError::Parse { reason, span } => {
                assert!(reason.contains("end of input"), "{reason}");
                assert_eq!(span, Span::point(text.len()));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage_with_span() {
        let text = "A > B C";
        let e = Topology::parse(text).unwrap_err();
        match e {
            ComposeError::Parse { reason, span } => {
                assert!(reason.contains("trailing"), "{reason}");
                assert_eq!(span, Span::new(6, 7), "span must point at `C`");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_input() {
        assert!(Topology::parse("   ").is_err());
    }

    #[test]
    fn rejects_compound_selector() {
        let e = Topology::parse("(A > B) > [C, D]").unwrap_err();
        // Span covers the parenthesized selector expression.
        assert_eq!(e.span(), Some(Span::new(0, 7)));
    }

    #[test]
    fn rejects_stray_character() {
        let e = Topology::parse("A + B").unwrap_err();
        assert_eq!(e.span(), Some(Span::new(2, 3)));
    }
}
