//! The topological representation of a predictor design (Section IV-A).
//!
//! A topology is an ordering of sub-components: `a > b` means `a` provides
//! the final prediction whenever it is ambiguous (i.e. `a` overrides `b`),
//! and an arbitration node `SEL > [x, y]` means `SEL` chooses among the
//! sub-topologies `x` and `y`. The notation used in the paper parses
//! directly:
//!
//! ```
//! use cobra_core::composer::Topology;
//!
//! let t = Topology::parse("LOOP3 > TOURNEY3 > [GBIM2 > BTB2, LBIM2]")?;
//! assert_eq!(t.component_names(), vec!["LOOP3", "TOURNEY3", "GBIM2", "BTB2", "LBIM2"]);
//! # Ok::<(), cobra_core::ComposeError>(())
//! ```

use crate::error::ComposeError;
use std::fmt;

/// A predictor topology: the ordering of sub-components that defines which
/// component provides the final prediction at each pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A single named sub-component.
    Leaf(String),
    /// `Over(a, b)`: `a` overrides `b`; `b`'s output feeds `a`'s
    /// `predict_in`.
    Over(Box<Topology>, Box<Topology>),
    /// An arbitration scheme choosing among several sub-topologies.
    Arbiter {
        /// The selecting component's name.
        selector: String,
        /// The competing sub-topologies, in `predict_in` port order.
        inputs: Vec<Topology>,
    },
}

impl Topology {
    /// Parses the paper's topology notation.
    ///
    /// Grammar (whitespace-insensitive):
    ///
    /// ```text
    /// expr  := unit ('>' (list | expr))?
    /// unit  := NAME | '(' expr ')'
    /// list  := '[' expr (',' expr)* ']'
    /// ```
    ///
    /// `NAME > [..]` forms an arbiter; `>` is right-associative, so
    /// `A > B > C` is `A > (B > C)`.
    ///
    /// # Errors
    ///
    /// Returns [`ComposeError::Parse`] on malformed input.
    pub fn parse(text: &str) -> Result<Self, ComposeError> {
        let tokens = tokenize(text)?;
        let mut p = Parser { tokens, pos: 0 };
        let t = p.parse_expr()?;
        if p.pos != p.tokens.len() {
            return Err(ComposeError::Parse {
                reason: format!("unexpected trailing input at token {}", p.pos),
            });
        }
        Ok(t)
    }

    /// All component names in override order (stronger first, arbiter
    /// inputs in port order).
    pub fn component_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Topology::Leaf(n) => out.push(n),
            Topology::Over(a, b) => {
                a.collect_names(out);
                b.collect_names(out);
            }
            Topology::Arbiter { selector, inputs } => {
                out.push(selector);
                for i in inputs {
                    i.collect_names(out);
                }
            }
        }
    }

    /// Number of sub-components in the topology.
    pub fn len(&self) -> usize {
        self.component_names().len()
    }

    /// `false`: a topology always contains at least one component.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Leaf(n) => f.write_str(n),
            Topology::Over(a, b) => {
                // Parenthesize a left operand that is itself a chain.
                match **a {
                    Topology::Leaf(_) | Topology::Arbiter { .. } => write!(f, "{a} > {b}"),
                    _ => write!(f, "({a}) > {b}"),
                }
            }
            Topology::Arbiter { selector, inputs } => {
                write!(f, "{selector} > [")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Name(String),
    Gt,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
}

fn tokenize(text: &str) -> Result<Vec<Token>, ComposeError> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '>' => {
                chars.next();
                tokens.push(Token::Gt);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '[' => {
                chars.next();
                tokens.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                tokens.push(Token::RBracket);
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Name(name));
            }
            other => {
                return Err(ComposeError::Parse {
                    reason: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    if tokens.is_empty() {
        return Err(ComposeError::Parse {
            reason: "empty topology".into(),
        });
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Token) -> Result<(), ComposeError> {
        match self.next() {
            Some(t) if t == want => Ok(()),
            other => Err(ComposeError::Parse {
                reason: format!("expected {want:?}, found {other:?}"),
            }),
        }
    }

    fn parse_expr(&mut self) -> Result<Topology, ComposeError> {
        let left = self.parse_unit()?;
        if self.peek() == Some(&Token::Gt) {
            self.next();
            if self.peek() == Some(&Token::LBracket) {
                let selector = match left {
                    Topology::Leaf(n) => n,
                    other => {
                        return Err(ComposeError::Parse {
                            reason: format!(
                                "arbiter selector must be a single component, found `{other}`"
                            ),
                        })
                    }
                };
                let inputs = self.parse_list()?;
                return Ok(Topology::Arbiter { selector, inputs });
            }
            let right = self.parse_expr()?;
            return Ok(Topology::Over(Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn parse_unit(&mut self) -> Result<Topology, ComposeError> {
        match self.next() {
            Some(Token::Name(n)) => Ok(Topology::Leaf(n)),
            Some(Token::LParen) => {
                let inner = self.parse_expr()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            other => Err(ComposeError::Parse {
                reason: format!("expected a component name or `(`, found {other:?}"),
            }),
        }
    }

    fn parse_list(&mut self) -> Result<Vec<Topology>, ComposeError> {
        self.expect(Token::LBracket)?;
        let mut items = vec![self.parse_expr()?];
        loop {
            match self.next() {
                Some(Token::Comma) => items.push(self.parse_expr()?),
                Some(Token::RBracket) => break,
                other => {
                    return Err(ComposeError::Parse {
                        reason: format!("expected `,` or `]`, found {other:?}"),
                    })
                }
            }
        }
        if items.len() < 2 {
            return Err(ComposeError::Parse {
                reason: "an arbiter needs at least two inputs".into(),
            });
        }
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_chain() {
        let t = Topology::parse("GTAG3 > BTB2 > BIM2").unwrap();
        assert_eq!(t.component_names(), vec!["GTAG3", "BTB2", "BIM2"]);
        match &t {
            Topology::Over(a, _) => assert_eq!(**a, Topology::Leaf("GTAG3".into())),
            _ => panic!("expected a chain"),
        }
    }

    #[test]
    fn chain_is_right_associative() {
        let t = Topology::parse("A > B > C").unwrap();
        let expect = Topology::Over(
            Box::new(Topology::Leaf("A".into())),
            Box::new(Topology::Over(
                Box::new(Topology::Leaf("B".into())),
                Box::new(Topology::Leaf("C".into())),
            )),
        );
        assert_eq!(t, expect);
    }

    #[test]
    fn parses_paper_tage_l_topology() {
        let t = Topology::parse("LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1").unwrap();
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn parses_arbiter() {
        let t = Topology::parse("TOURNEY3 > [GHT2, LHT2]").unwrap();
        match &t {
            Topology::Arbiter { selector, inputs } => {
                assert_eq!(selector, "TOURNEY3");
                assert_eq!(inputs.len(), 2);
            }
            _ => panic!("expected arbiter"),
        }
    }

    #[test]
    fn parses_nested_arbiter_operands() {
        let t = Topology::parse("TOURNEY3 > [GBIM2 > BTB2, LBIM2]").unwrap();
        assert_eq!(
            t.component_names(),
            vec!["TOURNEY3", "GBIM2", "BTB2", "LBIM2"]
        );
    }

    #[test]
    fn parses_loop_over_arbiter() {
        let t = Topology::parse("LOOP3 > TOURNEY3 > [GHT2, LHT2]").unwrap();
        match &t {
            Topology::Over(a, b) => {
                assert_eq!(**a, Topology::Leaf("LOOP3".into()));
                assert!(matches!(**b, Topology::Arbiter { .. }));
            }
            _ => panic!("expected loop over arbiter"),
        }
    }

    #[test]
    fn parses_parenthesized_operand_inside_list() {
        let t = Topology::parse("TOURNEY3 > [(LOOP2 > GHT2), LHT2]").unwrap();
        assert_eq!(
            t.component_names(),
            vec!["TOURNEY3", "LOOP2", "GHT2", "LHT2"]
        );
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "LOOP3 > TAGE3 > BTB2 > BIM2 > UBTB1",
            "TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
            "LOOP3 > TOURNEY3 > [GHT2, LHT2]",
        ] {
            let t = Topology::parse(s).unwrap();
            let t2 = Topology::parse(&t.to_string()).unwrap();
            assert_eq!(t, t2, "round-trip failed for {s}");
        }
    }

    #[test]
    fn rejects_single_input_arbiter() {
        let e = Topology::parse("T3 > [A2]").unwrap_err();
        assert!(matches!(e, ComposeError::Parse { .. }));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Topology::parse("A > B C").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(Topology::parse("   ").is_err());
    }

    #[test]
    fn rejects_compound_selector() {
        assert!(Topology::parse("(A > B) > [C, D]").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        assert!(Topology::parse("A + B").is_err());
    }
}
