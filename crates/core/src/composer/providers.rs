//! Generated history providers (paper Section IV-B3).
//!
//! The composer generates a *global* history provider (a speculatively
//! updated shift register whose snapshots are stored in the history file
//! for repair) and a *local* history provider (a PC-indexed table of
//! per-address histories, speculatively updated and repaired by the
//! forwards-walk mechanism).

use crate::types::StorageReport;
use cobra_sim::{
    bits, HistoryRegister, HistorySnapshot, PortKind, SnapError, Snapshot, SramModel, StateReader,
    StateWriter,
};

/// The speculative global-history register.
///
/// Updated with the predicted directions of in-flight branches; repaired by
/// restoring a snapshot stored in the history file ("our initial simple
/// implementation corrects mispredictions by storing snapshots of the
/// global history register in the history files").
#[derive(Debug, Clone)]
pub struct GlobalHistoryProvider {
    spec: HistoryRegister,
}

impl GlobalHistoryProvider {
    /// Creates a provider with a `width`-bit register.
    pub fn new(width: u32) -> Self {
        Self {
            spec: HistoryRegister::new(width.max(1)),
        }
    }

    /// The current speculative history (what a query reads at Fetch-1).
    pub fn current(&self) -> &HistoryRegister {
        &self.spec
    }

    /// Register width in bits.
    pub fn width(&self) -> u32 {
        self.spec.width()
    }

    /// Takes a snapshot for the history file.
    pub fn snapshot(&self) -> HistorySnapshot {
        self.spec.snapshot()
    }

    /// Takes a snapshot into `out`, reusing its buffer when possible (see
    /// [`HistoryRegister::snapshot_into`](cobra_sim::HistoryRegister::snapshot_into)).
    pub fn snapshot_into(&self, out: &mut HistorySnapshot) {
        self.spec.snapshot_into(out);
    }

    /// Speculatively pushes predicted branch outcomes (oldest first).
    pub fn speculate(&mut self, outcomes: impl IntoIterator<Item = bool>) {
        self.spec.push_all(outcomes);
    }

    /// Restores a snapshot (repair), then pushes corrected outcomes.
    pub fn rewind_to(&mut self, snap: &HistorySnapshot, corrected: impl IntoIterator<Item = bool>) {
        self.spec.restore(snap);
        self.spec.push_all(corrected);
    }

    /// Clears all history (machine reset).
    pub fn reset(&mut self) {
        self.spec.clear();
    }

    /// Storage declaration: the register itself plus one snapshot port's
    /// worth of wiring (snapshot *storage* is accounted to the history
    /// file, which holds the copies).
    pub fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_flops(self.spec.width() as u64);
        r
    }
}

impl Snapshot for GlobalHistoryProvider {
    fn save_state(&self, w: &mut StateWriter) {
        self.spec.save_state(w);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.spec.load_state(r)
    }
}

/// The PC-indexed local-history provider.
///
/// Each entry is a per-address history of the last `bits` outcomes of
/// branches mapping to it. Entries are speculatively updated when a packet
/// is accepted and restored (from the pre-update value stored in the
/// history file) when that packet squashes — the provider's share of the
/// forwards-walk repair mechanism.
#[derive(Debug)]
pub struct LocalHistoryProvider {
    table: SramModel<u64>,
    bits: u32,
}

impl LocalHistoryProvider {
    /// Creates a provider with `entries` histories of `bits` bits each.
    ///
    /// A `bits` of zero builds a disabled provider that reads as zero and
    /// ignores updates (for designs without local components).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two, or `bits > 64`.
    pub fn new(entries: u64, bits: u32) -> Self {
        assert!(
            cobra_sim::bits::is_pow2(entries),
            "entries must be a power of two"
        );
        assert!(bits <= 64, "local history limited to 64 bits");
        Self {
            table: SramModel::new(entries, bits as u64, PortKind::DualPort, 0u64),
            bits,
        }
    }

    /// `true` when the provider stores no history (disabled).
    pub fn is_disabled(&self) -> bool {
        self.bits == 0
    }

    /// History bits per entry.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of entries.
    pub fn entries(&self) -> u64 {
        self.table.len()
    }

    fn index(&self, pc: u64) -> u64 {
        bits::mix64(pc >> 1) & bits::mask(bits::clog2(self.table.len()))
    }

    /// Reads the local history for a fetch PC (at Fetch-1).
    pub fn read(&mut self, cycle: u64, pc: u64) -> u64 {
        if self.is_disabled() {
            return 0;
        }
        self.table.begin_cycle(cycle);
        *self.table.read(self.index(pc))
    }

    /// Speculatively shifts `outcomes` (oldest first) into the history for
    /// `pc`, returning the pre-update value for the history file.
    pub fn speculate(&mut self, pc: u64, outcomes: impl IntoIterator<Item = bool>) -> u64 {
        if self.is_disabled() {
            return 0;
        }
        let idx = self.index(pc);
        let old = *self.table.peek(idx);
        let mut h = old;
        for t in outcomes {
            h = ((h << 1) | t as u64) & bits::mask(self.bits);
        }
        self.table.begin_cycle(0);
        self.table.write(idx, h);
        old
    }

    /// Restores the pre-update value saved by [`speculate`](Self::speculate)
    /// (squash repair), optionally re-applying corrected outcomes.
    pub fn repair(&mut self, pc: u64, old: u64, corrected: impl IntoIterator<Item = bool>) {
        if self.is_disabled() {
            return;
        }
        let idx = self.index(pc);
        let mut h = old;
        for t in corrected {
            h = ((h << 1) | t as u64) & bits::mask(self.bits);
        }
        self.table.poke(idx, h);
    }

    /// Storage declaration — "the local history provider generates a large
    /// PC-indexed table of histories" that Fig 8 charges to Meta.
    pub fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        if !self.is_disabled() {
            r.add_sram("local-history-table", self.table.spec());
        }
        r
    }
}

impl Snapshot for LocalHistoryProvider {
    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w, |w, &h| w.write_u64(h));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let mask = bits::mask(self.bits);
        self.table.load_state(r, |r| {
            let h = r.read_u64("local history")?;
            if h & !mask != 0 {
                return Err(SnapError::BadValue {
                    what: "local history",
                    got: h,
                });
            }
            Ok(h)
        })
    }
}

/// The path-history provider — the history-provider variant the paper
/// notes "can also be implemented" (Section IV-B3, citing Nair's
/// path-based correlation).
///
/// Maintains a hash of the targets of recent taken control-flow
/// redirections. Components receive it through
/// [`HistoryView::phist`](crate::HistoryView); repair uses per-packet
/// snapshots exactly like the global history register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHistoryProvider {
    value: u64,
    bits: u32,
}

impl PathHistoryProvider {
    /// Creates a provider folding targets into `bits` bits (≤ 48).
    ///
    /// # Panics
    ///
    /// Panics if `bits > 48`.
    pub fn new(bits: u32) -> Self {
        assert!(bits <= 48, "path history limited to 48 bits");
        Self { value: 0, bits }
    }

    /// The current speculative path history.
    pub fn current(&self) -> u64 {
        self.value
    }

    /// Pushes the target of a taken redirection.
    pub fn speculate(&mut self, target: u64) {
        if self.bits == 0 {
            return;
        }
        self.value =
            ((self.value << 3) ^ cobra_sim::bits::mix64(target >> 1)) & bits::mask(self.bits);
    }

    /// Restores a snapshot (a plain copy of [`current`](Self::current)).
    pub fn restore(&mut self, snapshot: u64) {
        self.value = snapshot & bits::mask(self.bits.clamp(1, 48));
    }

    /// Register width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Storage declaration (a small register).
    pub fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_flops(self.bits as u64);
        r
    }
}

impl Snapshot for PathHistoryProvider {
    fn save_state(&self, w: &mut StateWriter) {
        w.write_u64(self.value);
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        let v = r.read_u64("path history")?;
        if v & !bits::mask(self.bits) != 0 {
            return Err(SnapError::BadValue {
                what: "path history",
                got: v,
            });
        }
        self.value = v;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghist_speculate_and_rewind() {
        let mut g = GlobalHistoryProvider::new(16);
        g.speculate([true, false]);
        let snap = g.snapshot();
        g.speculate([true, true, true]);
        assert_eq!(g.current().low_bits(3), 0b111);
        g.rewind_to(&snap, [false]);
        // Register now holds (newest first): false, false, true.
        assert_eq!(g.current().low_bits(3), 0b100);
    }

    #[test]
    fn ghist_reset_clears() {
        let mut g = GlobalHistoryProvider::new(8);
        g.speculate([true; 8]);
        g.reset();
        assert_eq!(g.current().low_bits(8), 0);
    }

    #[test]
    fn lhist_tracks_per_pc() {
        let mut l = LocalHistoryProvider::new(256, 10);
        l.speculate(0x1000, [true, true]);
        l.speculate(0x2340, [false]);
        // Updates to one PC's history must not leak into the other's.
        assert_eq!(l.read(0, 0x1000), 0b11);
        assert_eq!(l.read(0, 0x2340), 0b0);
    }

    #[test]
    fn lhist_speculate_returns_pre_value_and_repairs() {
        let mut l = LocalHistoryProvider::new(64, 8);
        l.speculate(0x40, [true]);
        let old = l.speculate(0x40, [true, true]);
        assert_eq!(old, 0b1);
        assert_eq!(l.read(0, 0x40), 0b111);
        l.repair(0x40, old, [false]);
        assert_eq!(l.read(0, 0x40), 0b10);
    }

    #[test]
    fn disabled_provider_is_inert() {
        let mut l = LocalHistoryProvider::new(1, 0);
        assert!(l.is_disabled());
        assert_eq!(l.speculate(0x40, [true]), 0);
        assert_eq!(l.read(0, 0x40), 0);
        assert_eq!(l.storage().total_bits(), 0);
    }

    #[test]
    fn lhist_width_truncates() {
        let mut l = LocalHistoryProvider::new(64, 4);
        l.speculate(0x80, [true; 8]);
        assert_eq!(l.read(0, 0x80), 0b1111);
    }

    #[test]
    fn path_history_folds_targets() {
        let mut p = PathHistoryProvider::new(16);
        p.speculate(0x4000);
        let one = p.current();
        p.speculate(0x8000);
        let two = p.current();
        assert_ne!(one, two);
        assert!(two <= 0xffff);
        p.restore(one);
        assert_eq!(p.current(), one);
    }

    #[test]
    fn disabled_path_history_is_inert() {
        let mut p = PathHistoryProvider::new(0);
        p.speculate(0x4000);
        assert_eq!(p.current(), 0);
        assert_eq!(p.storage().total_bits(), 0);
    }

    #[test]
    fn storage_shapes() {
        let g = GlobalHistoryProvider::new(64);
        assert_eq!(g.storage().total_bits(), 64);
        let l = LocalHistoryProvider::new(256, 32);
        assert_eq!(l.storage().total_bits(), 256 * 32);
    }
}
