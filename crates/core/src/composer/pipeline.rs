//! The compiled predictor pipeline (paper Section IV-B).
//!
//! [`PredictorPipeline::compile`] elaborates a [`Topology`] against a
//! [`ComponentRegistry`] into a DAG of component nodes. Per fetch packet,
//! [`PredictorPipeline::predict_packet`] queries every node once (history
//! is withheld from latency-1 nodes) and then folds the DAG once per
//! pipeline stage `d = 1..=depth`:
//!
//! * a node whose latency exceeds `d` passes its inputs through;
//! * a node whose latency is ≤ `d` composes its own response with its
//!   inputs (field-wise override by default, arbitration for selectors).
//!
//! The resulting per-stage bundles realize the paper's rule that "for any
//! latency `d`, the subset of the predictor topology containing
//! sub-components with latency `n ≤ d` specifies the final prediction made
//! `d` cycles after query", including the natural carrying-forward of
//! early predictions into later stages (Fig 4).

use crate::composer::plan::{ComponentKind, ExecutionPlan, PlanScratch};
use crate::composer::registry::{ComponentRegistry, Design};
use crate::composer::topology::Topology;
use crate::error::{ComposeError, Span};
use crate::iface::{FireEvent, HistoryView, PredictQuery, Response, UpdateEvent};
use crate::obs::interval::NodeProfiler;
use crate::obs::{PacketAttribution, MAX_TRACKED_COMPONENTS, NO_PROVIDER};
use crate::types::{Meta, PredictionBundle, SlotPrediction, StorageReport};
use cobra_sim::{SnapError, StateReader, StateWriter};
use std::time::Instant;

/// Maximum supported pipeline depth (response latency of the slowest
/// component).
pub const MAX_DEPTH: u8 = 8;

struct Node {
    component: ComponentKind,
    inputs: Vec<usize>,
    label: String,
}

/// Static facts about one pipeline node, extracted for the plan verifier
/// (which must not peek at the plan itself to re-derive ground truth).
#[derive(Debug, Clone)]
pub(crate) struct NodeFacts {
    pub(crate) label: String,
    pub(crate) latency: u8,
    pub(crate) is_custom: bool,
    pub(crate) inputs: Vec<usize>,
}

/// A compiled predictor pipeline: component nodes in dataflow order, the
/// lowered [`ExecutionPlan`] driving the devirtualized packet path, and
/// the stage-folding logic.
pub struct PredictorPipeline {
    nodes: Vec<Node>,
    final_node: usize,
    depth: u8,
    width: u8,
    plan: ExecutionPlan,
    scratch: PlanScratch,
    /// Plan path enabled (read from `COBRA_PLAN` at compile time;
    /// [`force_plan`](Self::force_plan) overrides in-process).
    plan_enabled: bool,
    /// Per-node fast-reset fallbacks: `None` once a node armed its own
    /// baseline, `Some(bytes)` holding the node's full serialized state
    /// otherwise. Empty when unarmed.
    node_baselines: Vec<Option<Vec<u8>>>,
    /// Hot-path self-profiler (`COBRA_PROFILE`): samples per-node predict
    /// and compose wall time on the plan path, 1 packet in 16. Renders its
    /// table to stderr on drop. `None` (the default) costs the packet path
    /// a single pointer-null check.
    profiler: Option<Box<NodeProfiler>>,
}

/// `true` unless `COBRA_PLAN` is `off` / `0` / `interpreter`. Read at
/// pipeline build time (not cached globally) so tests can flip the
/// variable between runs.
pub fn plan_env_enabled() -> bool {
    !matches!(
        std::env::var("COBRA_PLAN").as_deref(),
        Ok("off") | Ok("0") | Ok("interpreter")
    )
}

/// The full per-packet output of the pipeline: each node's raw response and
/// finalized metadata, plus the composed final prediction at every stage.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketPrediction {
    /// `stages[d-1]` is the final prediction visible at Fetch-`d`.
    pub stages: Vec<PredictionBundle>,
    /// Finalized per-node metadata, in node order.
    pub metas: Vec<Meta>,
    /// Value-flow provenance of the final stage's prediction.
    pub attr: PacketAttribution,
}

/// One row of [`PredictorPipeline::describe`]: which components respond at
/// a stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageDescription {
    /// Pipeline stage (Fetch-`stage`).
    pub stage: u8,
    /// Labels of components whose responses first appear at this stage.
    pub responders: Vec<String>,
}

impl PredictorPipeline {
    /// Compiles `topology` against `registry` for `width`-slot packets.
    ///
    /// # Errors
    ///
    /// Returns a [`ComposeError`] when a component name is unregistered, an
    /// arbiter's arity does not match its inputs, a latency is out of
    /// range, or a metadata declaration exceeds 64 bits.
    pub fn compile(
        topology: &Topology,
        registry: &ComponentRegistry,
        width: u8,
    ) -> Result<Self, ComposeError> {
        Self::compile_spanned(topology, &[], registry, width)
    }

    /// [`compile`](Self::compile) with the component-name spans from
    /// [`Topology::parse_spanned`], so an unknown name is reported with
    /// its exact location in the topology text. `spans` is in textual
    /// (`component_names`) order; pass `&[]` when no source text exists.
    ///
    /// # Errors
    ///
    /// As [`compile`](Self::compile).
    pub fn compile_spanned(
        topology: &Topology,
        spans: &[Span],
        registry: &ComponentRegistry,
        width: u8,
    ) -> Result<Self, ComposeError> {
        let mut nodes = Vec::new();
        let mut cursor = 0usize;
        let final_node =
            Self::build_node(topology, spans, &mut cursor, registry, width, &mut nodes)?;
        let mut depth = 1;
        for n in &nodes {
            let lat = n.component.latency();
            if lat == 0 || lat > MAX_DEPTH {
                return Err(ComposeError::InvalidLatency {
                    component: n.label.clone(),
                    latency: lat,
                });
            }
            if n.component.meta_bits() > 64 {
                return Err(ComposeError::MetadataTooWide {
                    component: n.label.clone(),
                    bits: n.component.meta_bits(),
                });
            }
            depth = depth.max(lat);
        }
        let latencies: Vec<u8> = nodes.iter().map(|n| n.component.latency()).collect();
        let custom: Vec<bool> = nodes.iter().map(|n| n.component.is_custom()).collect();
        let plan = ExecutionPlan::lower(nodes.len(), depth, latencies, &custom, |i| {
            nodes[i].inputs.clone()
        });
        let profiler = crate::obs::interval::profile_enabled().then(|| {
            Box::new(NodeProfiler::new(
                nodes.iter().map(|n| n.label.clone()).collect(),
            ))
        });
        Ok(Self {
            nodes,
            final_node,
            depth,
            width,
            plan,
            scratch: PlanScratch::default(),
            plan_enabled: plan_env_enabled(),
            node_baselines: Vec::new(),
            profiler,
        })
    }

    /// Builds the node array for `t`. `cursor` tracks the next unconsumed
    /// entry of `spans` in *textual* order (the order
    /// [`Topology::parse_spanned`] emits): a leaf consumes one span; `a > b`
    /// consumes `a`'s span, then `b`'s subtree; an arbiter consumes the
    /// selector's span, then each arm in source order.
    fn build_node(
        t: &Topology,
        spans: &[Span],
        cursor: &mut usize,
        registry: &ComponentRegistry,
        width: u8,
        nodes: &mut Vec<Node>,
    ) -> Result<usize, ComposeError> {
        let next_span = |cursor: &mut usize| {
            let s = spans.get(*cursor).copied();
            *cursor += 1;
            s
        };
        match t {
            Topology::Leaf(name) => {
                let span = next_span(cursor);
                Self::add_component(name, span, registry, width, vec![], nodes)
            }
            Topology::Over(a, b) => match &**a {
                Topology::Leaf(name) => {
                    let span = next_span(cursor);
                    let below = Self::build_node(b, spans, cursor, registry, width, nodes)?;
                    Self::add_component(name, span, registry, width, vec![below], nodes)
                }
                other => Err(ComposeError::Parse {
                    reason: format!(
                        "the left operand of `>` must be a single component, found `{other}`"
                    ),
                    span: crate::error::Span::point(0),
                }),
            },
            Topology::Arbiter { selector, inputs } => {
                let span = next_span(cursor);
                let mut ins = Vec::with_capacity(inputs.len());
                for i in inputs {
                    ins.push(Self::build_node(i, spans, cursor, registry, width, nodes)?);
                }
                Self::add_component(selector, span, registry, width, ins, nodes)
            }
        }
    }

    fn add_component(
        name: &str,
        span: Option<Span>,
        registry: &ComponentRegistry,
        width: u8,
        inputs: Vec<usize>,
        nodes: &mut Vec<Node>,
    ) -> Result<usize, ComposeError> {
        let component = registry.build(name, width, span)?;
        let arity = component.arity();
        let ok = if arity >= 2 {
            inputs.len() == arity
        } else {
            inputs.len() <= 1
        };
        if !ok {
            return Err(ComposeError::ArityMismatch {
                component: name.into(),
                expected: arity,
                found: inputs.len(),
            });
        }
        nodes.push(Node {
            component,
            inputs,
            label: name.to_string(),
        });
        Ok(nodes.len() - 1)
    }

    /// Compiles the design's topology string against its registry.
    ///
    /// # Errors
    ///
    /// Propagates parse and composition errors.
    pub fn from_design(design: &Design, width: u8) -> Result<Self, ComposeError> {
        let (topo, spans) = Topology::parse_spanned(&design.topology)?;
        Self::compile_spanned(&topo, &spans, &design.registry, width)
    }

    /// Pipeline depth: the latency of the slowest component.
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// The lowered execution plan driving the devirtualized packet path.
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// `true` when packets take the plan path (vs. the reference
    /// interpreter fold).
    pub fn plan_enabled(&self) -> bool {
        self.plan_enabled
    }

    /// Overrides the `COBRA_PLAN` selection made at compile time — used by
    /// in-process differential tests and benches to flip paths without
    /// touching the environment.
    pub fn force_plan(&mut self, enabled: bool) {
        self.plan_enabled = enabled;
    }

    /// Test hook: arms (or disarms) the per-node self-profiler in-process,
    /// independent of the `COBRA_PROFILE` gate read at compile time.
    #[doc(hidden)]
    pub fn force_profiler(&mut self, on: bool) {
        self.profiler = on.then(|| {
            Box::new(NodeProfiler::new(
                self.nodes.iter().map(|n| n.label.clone()).collect(),
            ))
        });
    }

    /// The self-profiler's rendered table, if armed and any packet was
    /// sampled (the same table it prints to stderr on drop).
    pub fn profile_report(&self) -> Option<String> {
        self.profiler.as_ref().and_then(|p| p.render())
    }

    /// Fetch-packet width in slots.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Number of component nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node labels in dataflow order (inputs before consumers).
    pub fn labels(&self) -> Vec<&str> {
        self.nodes.iter().map(|n| n.label.as_str()).collect()
    }

    /// Per-node static facts (label, latency, custom-lowering flag, input
    /// edges) in dataflow order. This is the ground truth the plan
    /// verifier re-derives fold schedules from and checks the lowered
    /// [`ExecutionPlan`] against.
    pub(crate) fn node_facts(&self) -> Vec<NodeFacts> {
        self.nodes
            .iter()
            .map(|n| NodeFacts {
                label: n.label.clone(),
                latency: n.component.latency(),
                is_custom: n.component.is_custom(),
                inputs: n.inputs.clone(),
            })
            .collect()
    }

    /// The maximum local-history bits any component requests.
    pub fn local_history_bits(&self) -> u32 {
        self.nodes
            .iter()
            .map(|n| n.component.local_history_bits())
            .max()
            .unwrap_or(0)
    }

    /// Label of the component requesting the most local-history bits (for
    /// error attribution).
    pub fn widest_local_history_component(&self) -> Option<String> {
        self.nodes
            .iter()
            .max_by_key(|n| n.component.local_history_bits())
            .filter(|n| n.component.local_history_bits() > 0)
            .map(|n| n.label.clone())
    }

    /// Total metadata bits per history-file entry (sum over components).
    pub fn meta_bits(&self) -> u32 {
        self.nodes.iter().map(|n| n.component.meta_bits()).sum()
    }

    /// Total SRAM port-budget violations across all components.
    pub fn port_violations(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.component.port_violations())
            .sum()
    }

    /// Per-component SRAM access counts, labelled (energy model input).
    pub fn accesses_by_component(&self) -> Vec<(String, Vec<crate::types::AccessReport>)> {
        self.nodes
            .iter()
            .map(|n| (n.label.clone(), n.component.accesses()))
            .collect()
    }

    /// Per-component storage reports, labelled.
    pub fn storage_by_component(&self) -> Vec<(String, StorageReport)> {
        self.nodes
            .iter()
            .map(|n| (n.label.clone(), n.component.storage()))
            .collect()
    }

    /// A pipeline diagram: which components first respond at each stage
    /// (the content of the paper's Fig 4 / Fig 7 diagrams).
    pub fn describe(&self) -> Vec<StageDescription> {
        (1..=self.depth)
            .map(|stage| StageDescription {
                stage,
                responders: self
                    .nodes
                    .iter()
                    .filter(|n| n.component.latency() == stage)
                    .map(|n| n.label.clone())
                    .collect(),
            })
            .collect()
    }

    /// Queries every component for one fetch packet and folds the DAG into
    /// per-stage final predictions.
    ///
    /// `hist` is handed only to components with latency ≥ 2, enforcing the
    /// interface's history-timing rule.
    pub fn predict_packet(
        &mut self,
        cycle: u64,
        pc: u64,
        hist: &HistoryView<'_>,
    ) -> PacketPrediction {
        self.predict_packet_width(cycle, pc, self.width, hist)
    }

    /// [`predict_packet`](Self::predict_packet) for a packet narrower than
    /// the full fetch width (a fetch that enters mid-block only covers the
    /// slots to the block end).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds the pipeline's fetch width.
    pub fn predict_packet_width(
        &mut self,
        cycle: u64,
        pc: u64,
        width: u8,
        hist: &HistoryView<'_>,
    ) -> PacketPrediction {
        let mut out = PacketPrediction {
            stages: Vec::new(),
            metas: Vec::new(),
            attr: crate::obs::PacketAttribution::EMPTY,
        };
        self.predict_packet_into(cycle, pc, width, hist, &mut out);
        out
    }

    /// [`predict_packet_width`](Self::predict_packet_width) writing into an
    /// existing `out`, reusing its `stages`/`metas` buffers — the steady
    /// state predicts without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds the pipeline's fetch width.
    pub fn predict_packet_into(
        &mut self,
        cycle: u64,
        pc: u64,
        width: u8,
        hist: &HistoryView<'_>,
        out: &mut PacketPrediction,
    ) {
        assert!(
            width >= 1 && width <= self.width,
            "packet width out of range"
        );
        if self.plan_enabled {
            self.predict_packet_plan(cycle, pc, width, hist, out);
        } else {
            self.predict_packet_interp(cycle, pc, width, hist, out);
        }
    }

    /// The reference interpreter fold: every node composes at every stage
    /// with freshly gathered inputs. Kept verbatim as the semantic ground
    /// truth the plan path is differentially tested against
    /// (`COBRA_PLAN=off`).
    fn predict_packet_interp(
        &mut self,
        cycle: u64,
        pc: u64,
        width: u8,
        hist: &HistoryView<'_>,
        out: &mut PacketPrediction,
    ) {
        let n = self.nodes.len();
        let mut responses: Vec<Response> = Vec::with_capacity(n);
        for node in &mut self.nodes {
            let q = PredictQuery {
                cycle,
                pc,
                width,
                hist: (node.component.latency() >= 2).then_some(*hist),
            };
            responses.push(node.component.predict(&q));
        }

        out.stages.clear();
        out.metas.clear();
        out.metas.resize(n, Meta::ZERO);
        let mut meta_done = vec![false; n];
        let mut outs: Vec<PredictionBundle> = vec![PredictionBundle::new(width); n];
        for d in 1..=self.depth {
            // Nodes are stored in dataflow order, so a single pass works.
            for i in 0..n {
                let node = &self.nodes[i];
                let inputs: Vec<PredictionBundle> = node.inputs.iter().map(|&j| outs[j]).collect();
                let own = (node.component.latency() <= d).then(|| &responses[i]);
                outs[i] = node.component.compose(width, own, &inputs);
                if node.component.latency() == d && !meta_done[i] {
                    out.metas[i] = node.component.finalize_meta(&responses[i], &inputs);
                    meta_done[i] = true;
                }
            }
            out.stages.push(outs[self.final_node]);
            if crate::sanitize::enabled() && d >= 2 {
                check_refinement(
                    pc,
                    d,
                    &out.stages[d as usize - 2],
                    &out.stages[d as usize - 1],
                );
            }
        }
        out.attr = attribute_final(&self.nodes, self.final_node, &responses, &outs, width);
    }

    /// The plan path: same fold, driven by the precomputed schedules with
    /// reused scratch buffers. A node absent from a stage's schedule keeps
    /// its prior-stage output — composition is pure, so the result is
    /// byte-identical to the interpreter's.
    fn predict_packet_plan(
        &mut self,
        cycle: u64,
        pc: u64,
        width: u8,
        hist: &HistoryView<'_>,
        out: &mut PacketPrediction,
    ) {
        let n = self.nodes.len();
        let mut scratch = std::mem::take(&mut self.scratch);
        // The profiler is moved out for the duration of the packet so the
        // node iteration below can borrow `self.nodes` mutably.
        let mut prof = self.profiler.take();
        let sample = prof.as_deref_mut().is_some_and(NodeProfiler::tick);
        scratch.responses.clear();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            let q = PredictQuery {
                cycle,
                pc,
                width,
                hist: self.plan.wants_hist[i].then_some(*hist),
            };
            if sample {
                let t0 = Instant::now();
                scratch.responses.push(node.component.predict(&q));
                if let Some(p) = prof.as_deref_mut() {
                    p.record_predict(i, t0);
                }
            } else {
                scratch.responses.push(node.component.predict(&q));
            }
        }

        out.stages.clear();
        out.metas.clear();
        out.metas.resize(n, Meta::ZERO);
        // Stage 1 schedules every node in dataflow order, so each `outs`
        // entry is overwritten before any consumer reads it — the buffer
        // only needs (re)initialization when the node count changes.
        if scratch.outs.len() != n {
            scratch.outs.clear();
            scratch.outs.resize(n, PredictionBundle::new(width));
        }
        for d in 1..=self.depth {
            for &iu in self.plan.schedule(d) {
                let i = iu as usize;
                let (lo, hi) = self.plan.input_range[i];
                let node = &self.nodes[i];
                let lat = self.plan.latency[i];
                let own = (lat <= d).then(|| &scratch.responses[i]);
                // Arity 0/1 nodes (the common case) borrow their input
                // straight out of `outs`; only arbiters pay a gather copy.
                let inputs: &[PredictionBundle] = match hi - lo {
                    0 => &[],
                    1 => std::slice::from_ref(
                        &scratch.outs[self.plan.input_ix[lo as usize] as usize],
                    ),
                    _ => {
                        scratch.inputs_buf.clear();
                        for &j in &self.plan.input_ix[lo as usize..hi as usize] {
                            scratch.inputs_buf.push(scratch.outs[j as usize]);
                        }
                        &scratch.inputs_buf
                    }
                };
                let composed = if sample {
                    let t0 = Instant::now();
                    let c = node.component.compose(width, own, inputs);
                    if let Some(p) = prof.as_deref_mut() {
                        p.record_compose(i, t0);
                    }
                    c
                } else {
                    node.component.compose(width, own, inputs)
                };
                if lat == d {
                    out.metas[i] = node.component.finalize_meta(&scratch.responses[i], inputs);
                }
                scratch.outs[i] = composed;
            }
            out.stages.push(scratch.outs[self.final_node]);
            if crate::sanitize::enabled() && d >= 2 {
                check_refinement(
                    pc,
                    d,
                    &out.stages[d as usize - 2],
                    &out.stages[d as usize - 1],
                );
            }
        }
        out.attr = attribute_final(
            &self.nodes,
            self.final_node,
            &scratch.responses,
            &scratch.outs,
            width,
        );
        self.scratch = scratch;
        self.profiler = prof;
    }

    /// Broadcasts a `fire` event; each component receives its own metadata.
    pub fn fire(
        &mut self,
        pc: u64,
        hist: &HistoryView<'_>,
        metas: &[Meta],
        pred: &PredictionBundle,
    ) {
        self.check_meta_tokens("fire", metas);
        for (node, &meta) in self.nodes.iter_mut().zip(metas) {
            node.component.fire(&FireEvent {
                pc,
                hist: *hist,
                meta,
                pred,
            });
        }
    }

    /// Broadcasts a `repair` event.
    pub fn repair(
        &mut self,
        pc: u64,
        hist: &HistoryView<'_>,
        metas: &[Meta],
        pred: &PredictionBundle,
    ) {
        self.check_meta_tokens("repair", metas);
        for (node, &meta) in self.nodes.iter_mut().zip(metas) {
            node.component.repair(&FireEvent {
                pc,
                hist: *hist,
                meta,
                pred,
            });
        }
    }

    /// Broadcasts a `mispredict` event.
    pub fn mispredict(&mut self, ev_base: &UpdateEvent<'_>, metas: &[Meta]) {
        self.check_meta_tokens("mispredict", metas);
        for (node, &meta) in self.nodes.iter_mut().zip(metas) {
            node.component.mispredict(&UpdateEvent { meta, ..*ev_base });
        }
    }

    /// Broadcasts a commit-time `update` event.
    pub fn update(&mut self, ev_base: &UpdateEvent<'_>, metas: &[Meta]) {
        self.check_meta_tokens("update", metas);
        for (node, &meta) in self.nodes.iter_mut().zip(metas) {
            node.component.update(&UpdateEvent { meta, ..*ev_base });
        }
    }

    /// Serializes every component's tables into a checkpoint stream, each
    /// node wrapped in a section named after its topology label so a
    /// restore into a different pipeline fails loudly.
    pub fn save_state(&self, w: &mut StateWriter) {
        for node in &self.nodes {
            w.begin_section(&node.label);
            node.component.save_state(w);
            w.end_section();
        }
    }

    /// Restores component state written by [`save_state`](Self::save_state)
    /// into a pipeline compiled from the same topology.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when a section name does not match this
    /// pipeline's node order or a component rejects its payload.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        // A full restore replaces component state wholesale; any armed
        // baseline would describe state that no longer exists.
        self.node_baselines.clear();
        for node in &mut self.nodes {
            r.open_section(&node.label)?;
            node.component.load_state(r)?;
            r.close_section()?;
        }
        Ok(())
    }

    /// Arms every component's current state as a fast-reset baseline.
    ///
    /// Components supporting dirty-state resets
    /// ([`Component::arm_baseline`](crate::Component::arm_baseline)) arm
    /// in place; the rest fall back to a one-time full serialization that
    /// [`reset_to_baseline`](Self::reset_to_baseline) replays.
    pub fn arm_baseline(&mut self) {
        self.node_baselines = self
            .nodes
            .iter_mut()
            .map(|node| {
                if node.component.arm_baseline() {
                    None
                } else {
                    let mut w = StateWriter::new();
                    w.begin_section(&node.label);
                    node.component.save_state(&mut w);
                    w.end_section();
                    Some(w.finish())
                }
            })
            .collect();
    }

    /// `true` when [`arm_baseline`](Self::arm_baseline) has been called
    /// (and no full restore has disarmed it since).
    pub fn baseline_armed(&self) -> bool {
        self.node_baselines.len() == self.nodes.len()
    }

    /// Restores every component to the armed baseline — dirty-state reset
    /// where supported, full deserialize otherwise. The baseline stays
    /// armed for the next rerun.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if a fallback payload fails to decode
    /// (impossible unless a component's save/load pair is asymmetric).
    ///
    /// # Panics
    ///
    /// Panics if no baseline is armed.
    pub fn reset_to_baseline(&mut self) -> Result<(), SnapError> {
        assert!(
            self.baseline_armed(),
            "reset_to_baseline without an armed baseline"
        );
        for (node, fallback) in self.nodes.iter_mut().zip(&self.node_baselines) {
            match fallback {
                None => node.component.reset_baseline(),
                Some(bytes) => {
                    let mut r = StateReader::new(bytes);
                    r.open_section(&node.label)?;
                    node.component.load_state(&mut r)?;
                    r.close_section()?;
                }
            }
        }
        Ok(())
    }

    /// Sanitizer hook: every event broadcast must carry exactly one
    /// metadata word per component — a mismatch means a history-file token
    /// was built for a different pipeline or truncated in flight.
    #[inline]
    fn check_meta_tokens(&self, event: &str, metas: &[Meta]) {
        if crate::sanitize::enabled() && metas.len() != self.nodes.len() {
            crate::sanitize::violation(&format!(
                "{event} broadcast carries {} metadata word(s) for {} component(s)",
                metas.len(),
                self.nodes.len()
            ));
        }
    }
}

/// Sanitizer hook: composed predictions must refine monotonically — a slot
/// resolved at stage `d-1` (kind, direction, or target known) must still
/// be resolved at stage `d`. Values may change (that is an override);
/// knowledge may not be un-learned.
fn check_refinement(pc: u64, stage: u8, prev: &PredictionBundle, cur: &PredictionBundle) {
    for i in 0..prev.width() as usize {
        let p = prev.slot(i);
        let c = cur.slot(i);
        let dropped = (p.kind.is_some() && c.kind.is_none())
            || (p.taken.is_some() && c.taken.is_none())
            || (p.target().is_some() && c.target().is_none());
        if dropped {
            crate::sanitize::violation(&format!(
                "monotonic refinement violated at pc {pc:#x} slot {i}: stage {} predicted \
                 {p:?} but stage {stage} degraded it to {c:?}",
                stage - 1
            ));
        }
    }
}

/// Encodes one predicted field of a slot as a comparable value (`None`:
/// the field is unpredicted). Field indices: 0 = kind, 1 = taken,
/// 2 = target.
fn field_val(sp: &SlotPrediction, f: usize) -> Option<u64> {
    match f {
        0 => sp.kind.map(|k| k as u64),
        1 => sp.taken.map(u64::from),
        _ => sp.target(),
    }
}

/// Provider of value `v` for field `f` of slot `s` as seen at node
/// `start`: follows the first input (base of the topology first) whose
/// composed output carries the same value, bottoming out at the node
/// that introduced it. Inputs come before their consumers in dataflow
/// order, so the walk strictly descends and terminates.
fn walk_provider(
    nodes: &[Node],
    outs: &[PredictionBundle],
    start: usize,
    f: usize,
    s: usize,
    v: u64,
) -> u8 {
    let mut i = start;
    'descend: loop {
        for &j in &nodes[i].inputs {
            if field_val(outs[j].slot(s), f) == Some(v) {
                i = j;
                continue 'descend;
            }
        }
        return i as u8;
    }
}

/// The operational-provenance fold: for every predicted field of every
/// slot of the final bundle, finds the node whose own response
/// established the winning value ([`walk_provider`]). Ties credit the
/// node closest to the base of the topology (an arbiter that forwards a
/// sub-predictor's value attributes the sub-predictor, not itself); a
/// value no input carries is credited to the composing node.
///
/// `outs` are the final-stage per-node composed bundles, `responses` the
/// raw per-node responses. Only fields the final bundle actually carries
/// are walked, so the per-packet cost tracks the (small) number of live
/// predictions, not `nodes × width × 3`.
fn attribute_final(
    nodes: &[Node],
    final_node: usize,
    responses: &[Response],
    outs: &[PredictionBundle],
    width: u8,
) -> PacketAttribution {
    let n = nodes.len();
    if n >= NO_PROVIDER as usize {
        return PacketAttribution::EMPTY;
    }
    let width = width as usize;
    let mut attr = PacketAttribution::EMPTY;
    let fin = &outs[final_node];
    for s in 0..width.min(fin.width() as usize) {
        let sp = fin.slot(s);
        if sp.is_empty() {
            continue;
        }
        for f in 0..3 {
            if let Some(v) = field_val(sp, f) {
                let p = walk_provider(nodes, outs, final_node, f, s, v);
                match f {
                    0 => attr.kind_provider[s] = p,
                    1 => attr.taken_provider[s] = p,
                    _ => attr.target_provider[s] = p,
                }
            }
        }
    }
    for (i, resp) in responses
        .iter()
        .enumerate()
        .take(n.min(MAX_TRACKED_COMPONENTS))
    {
        let w = width.min(resp.pred.width() as usize);
        for s in 0..w {
            let sp = resp.pred.slot(s);
            if sp.taken.is_some() {
                attr.proposed_taken[i] |= 1 << s;
            }
            if sp.target().is_some() {
                attr.proposed_target[i] |= 1 << s;
            }
        }
    }
    attr
}

impl std::fmt::Debug for PredictorPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PredictorPipeline")
            .field("labels", &self.labels())
            .field("depth", &self.depth)
            .field("width", &self.width)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{Hbim, HbimConfig, MicroBtb, MicroBtbConfig, Tourney, TourneyConfig};
    use crate::iface::SlotResolution;
    use crate::types::BranchKind;
    use cobra_sim::HistoryRegister;

    fn test_registry() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        r.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(1024, w))));
        r.register("GBIM2", |w| {
            Box::new(Hbim::new(HbimConfig::gbim(1024, 8, w)))
        });
        r.register("LBIM2", |w| {
            Box::new(Hbim::new(HbimConfig::lbim(1024, 8, w)))
        });
        r.register("UBTB1", |w| {
            Box::new(MicroBtb::new(MicroBtbConfig::small(w)))
        });
        r.register("TOURNEY3", |w| {
            Box::new(Tourney::new(TourneyConfig::paper(w)))
        });
        r
    }

    fn compile(s: &str) -> PredictorPipeline {
        let t = Topology::parse(s).unwrap();
        PredictorPipeline::compile(&t, &test_registry(), 4).unwrap()
    }

    #[test]
    fn depth_is_max_latency() {
        assert_eq!(compile("BIM2 > UBTB1").depth(), 2);
        assert_eq!(compile("TOURNEY3 > [GBIM2, LBIM2]").depth(), 3);
    }

    #[test]
    fn unknown_component_errors() {
        let t = Topology::parse("NOPE9").unwrap();
        let e = PredictorPipeline::compile(&t, &test_registry(), 4).unwrap_err();
        assert!(matches!(e, ComposeError::UnknownComponent { .. }));
    }

    #[test]
    fn arbiter_arity_checked() {
        // Tourney as a plain chain element (1 input) must be rejected.
        let t = Topology::parse("TOURNEY3 > BIM2").unwrap();
        let e = PredictorPipeline::compile(&t, &test_registry(), 4).unwrap_err();
        assert!(matches!(e, ComposeError::ArityMismatch { .. }));
    }

    #[test]
    fn over_requires_leaf_left_operand() {
        // (A > B) > C with A>B as the *overriding* side cannot be expressed
        // by the chain builder; parser yields Over(Over(..)..) only via
        // parentheses.
        let t = Topology::parse("(BIM2 > UBTB1) > GBIM2").unwrap();
        let e = PredictorPipeline::compile(&t, &test_registry(), 4).unwrap_err();
        assert!(matches!(e, ComposeError::Parse { .. }));
    }

    #[test]
    fn stage_outputs_respect_latencies() {
        let mut p = compile("BIM2 > UBTB1");
        let ghist = HistoryRegister::new(16);
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        let out = p.predict_packet(0, 0x1000, &hist);
        assert_eq!(out.stages.len(), 2);
        // Cold uBTB misses, so stage 1 is empty; stage 2 carries BIM
        // direction predictions.
        assert_eq!(out.stages[0].slot(0).taken, None);
        assert!(out.stages[1].slot(0).taken.is_some());
    }

    #[test]
    fn early_prediction_carries_into_later_stages() {
        // Train the uBTB so it hits at stage 1; its (kind, target) must
        // persist at stage 2 even though the BIM responds there.
        let mut p = compile("BIM2 > UBTB1");
        let ghist = HistoryRegister::new(16);
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        let out = p.predict_packet(0, 0x1000, &hist);
        let res = [SlotResolution {
            slot: 0,
            kind: BranchKind::Conditional,
            taken: true,
            target: 0x2000,
        }];
        let pred = out.stages[1];
        let ev = UpdateEvent {
            pc: 0x1000,
            width: 4,
            hist,
            meta: Meta::ZERO,
            pred: &pred,
            resolutions: &res,
            mispredicted_slot: None,
        };
        p.update(&ev, &out.metas);
        let out = p.predict_packet(1, 0x1000, &hist);
        assert_eq!(
            out.stages[0].slot(0).target(),
            Some(0x2000),
            "uBTB hit at F1"
        );
        assert_eq!(
            out.stages[1].slot(0).target(),
            Some(0x2000),
            "carried into F2"
        );
    }

    #[test]
    fn tournament_pipeline_stage_sequencing() {
        let mut p = compile("TOURNEY3 > [GBIM2, LBIM2]");
        let ghist = HistoryRegister::new(16);
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        let out = p.predict_packet(0, 0x2000, &hist);
        assert_eq!(out.stages.len(), 3);
        // At stage 2 the selector has not responded: input 0 (GBIM) is the
        // default. At stage 3 the tournament decision applies.
        assert!(out.stages[1].slot(0).taken.is_some());
        assert!(out.stages[2].slot(0).taken.is_some());
    }

    #[test]
    fn meta_bits_aggregates_components() {
        let p = compile("TOURNEY3 > [GBIM2, LBIM2]");
        assert_eq!(p.meta_bits(), 34 + 8 + 8);
    }

    #[test]
    fn local_history_bits_is_component_max() {
        let p = compile("TOURNEY3 > [GBIM2, LBIM2]");
        assert_eq!(p.local_history_bits(), 8);
        let p = compile("BIM2 > UBTB1");
        assert_eq!(p.local_history_bits(), 0);
    }

    #[test]
    fn describe_places_components_at_their_stages() {
        let p = compile("TOURNEY3 > [GBIM2, LBIM2]");
        let d = p.describe();
        assert_eq!(d.len(), 3);
        assert!(d[0].responders.is_empty());
        assert_eq!(d[1].responders.len(), 2);
        assert_eq!(d[2].responders, vec!["TOURNEY3".to_string()]);
    }

    #[test]
    fn profiler_does_not_change_predictions() {
        let mk = || {
            let mut p = compile("TOURNEY3 > [GBIM2, LBIM2]");
            p.force_plan(true);
            p
        };
        let mut plain = mk();
        let mut profiled = mk();
        profiled.force_profiler(true);
        let ghist = HistoryRegister::new(16);
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        for i in 0..40u64 {
            let pc = 0x1000 + (i % 7) * 0x40;
            let a = plain.predict_packet(i, pc, &hist);
            let b = profiled.predict_packet(i, pc, &hist);
            assert_eq!(a, b, "profiling must not perturb predictions");
        }
        assert!(
            profiled.profile_report().is_some(),
            "40 packets sample at least once"
        );
        assert!(plain.profile_report().is_none());
    }

    #[test]
    fn ordering_matters_between_topologies() {
        // uBTB above BIM vs BIM above uBTB produce different stage-2
        // predictions once the uBTB is trained to disagree with the BIM.
        let mut above = compile("UBTB1 > BIM2");
        let mut below = compile("BIM2 > UBTB1");
        let ghist = HistoryRegister::new(16);
        let hist = HistoryView {
            ghist: &ghist,
            lhist: 0,
            phist: 0,
        };
        // Train uBTB taken, BIM (via many not-taken updates) not-taken.
        for pipeline in [&mut above, &mut below] {
            // First, teach the uBTB a taken branch.
            let out = pipeline.predict_packet(0, 0x3000, &hist);
            let res = [SlotResolution {
                slot: 0,
                kind: BranchKind::Conditional,
                taken: true,
                target: 0x4000,
            }];
            let pred = out.stages[1];
            let ev = UpdateEvent {
                pc: 0x3000,
                width: 4,
                hist,
                meta: Meta::ZERO,
                pred: &pred,
                resolutions: &res,
                mispredicted_slot: None,
            };
            pipeline.update(&ev, &out.metas);
            // Then drive the shared outcome not-taken several times so the
            // BIM learns not-taken while the uBTB counter weakens slowly.
            for _ in 0..2 {
                let out = pipeline.predict_packet(0, 0x3000, &hist);
                let res = [SlotResolution {
                    slot: 0,
                    kind: BranchKind::Conditional,
                    taken: false,
                    target: 0,
                }];
                let pred = out.stages[1];
                let ev = UpdateEvent {
                    pc: 0x3000,
                    width: 4,
                    hist,
                    meta: Meta::ZERO,
                    pred: &pred,
                    resolutions: &res,
                    mispredicted_slot: None,
                };
                pipeline.update(&ev, &out.metas);
            }
        }
        // Retrain the uBTB taken one more time in both, so uBTB=taken,
        // BIM=not-taken.
        for pipeline in [&mut above, &mut below] {
            for _ in 0..3 {
                let out = pipeline.predict_packet(0, 0x3000, &hist);
                let res = [SlotResolution {
                    slot: 0,
                    kind: BranchKind::Conditional,
                    taken: true,
                    target: 0x4000,
                }];
                let pred = out.stages[0];
                let ev = UpdateEvent {
                    pc: 0x3000,
                    width: 4,
                    hist,
                    meta: Meta::ZERO,
                    pred: &pred,
                    resolutions: &res,
                    mispredicted_slot: None,
                };
                pipeline.update(&ev, &out.metas);
            }
        }
        let _ = above.predict_packet(0, 0x3000, &hist);
        let _ = below.predict_packet(0, 0x3000, &hist);
        // Structural check: same components, different final node.
        assert_eq!(above.labels(), vec!["BIM2", "UBTB1"]);
        assert_eq!(below.labels(), vec!["UBTB1", "BIM2"]);
    }
}
