//! Error types for topology parsing and pipeline composition.

use std::error::Error;
use std::fmt;

/// A half-open byte range `[start, end)` into the topology source text.
///
/// Spans let diagnostics point at the exact token that caused a problem —
/// every parse error and every component-attributed analysis diagnostic
/// carries one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first offending character.
    pub start: usize,
    /// Byte offset one past the last offending character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// A zero-width span at `pos` (used for "unexpected end of input").
    pub fn point(pos: usize) -> Self {
        Self {
            start: pos,
            end: pos,
        }
    }

    /// Length of the span in bytes.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// `true` when the span covers no characters.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// A caret line (`^^^` under the offending range) for terminal
    /// rendering beneath the topology text.
    pub fn caret_line(&self) -> String {
        let mut s = " ".repeat(self.start);
        s.push_str(&"^".repeat(self.len().max(1)));
        s
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// An error raised while parsing a topology expression or composing a
/// predictor pipeline from one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// The topology expression could not be parsed.
    Parse {
        /// Human-readable description of the syntax problem.
        reason: String,
        /// Byte range of the offending token in the topology text.
        span: Span,
    },
    /// A component name in the topology has no registered factory.
    UnknownComponent {
        /// The unresolved name, e.g. `"FOO3"`.
        name: String,
        /// Byte range of the name in the topology text, when known (the
        /// composer always supplies it; direct
        /// [`ComponentRegistry::build`](crate::composer::ComponentRegistry::build)
        /// callers may not have one).
        span: Option<Span>,
    },
    /// An arbitration component was given the wrong number of inputs.
    ArityMismatch {
        /// The component's label.
        component: String,
        /// Inputs the component requires.
        expected: usize,
        /// Inputs the topology supplies.
        found: usize,
    },
    /// A component declared an invalid latency (zero, or exceeding the
    /// supported pipeline depth).
    InvalidLatency {
        /// The component's label.
        component: String,
        /// The offending latency.
        latency: u8,
    },
    /// A component declared more metadata bits than the framework stores.
    MetadataTooWide {
        /// The component's label.
        component: String,
        /// Declared metadata width.
        bits: u32,
    },
    /// A component requested a wider local history than the provider
    /// supports (64 bits).
    LocalHistoryTooWide {
        /// The component's label.
        component: String,
        /// Declared local-history width.
        bits: u32,
    },
    /// Static analysis rejected the design with one or more error-level
    /// diagnostics (see [`crate::analysis`]).
    Analysis {
        /// The error-level diagnostics, in pass order.
        diagnostics: Vec<crate::analysis::Diagnostic>,
    },
}

impl ComposeError {
    /// The span of the offending token, when the error points into the
    /// topology text.
    pub fn span(&self) -> Option<Span> {
        match self {
            ComposeError::Parse { span, .. } => Some(*span),
            ComposeError::UnknownComponent { span, .. } => *span,
            ComposeError::Analysis { diagnostics } => diagnostics.iter().find_map(|d| d.span),
            _ => None,
        }
    }
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Parse { reason, span } => {
                write!(f, "topology parse error at {span}: {reason}")
            }
            ComposeError::UnknownComponent { name, .. } => {
                write!(f, "unknown component name `{name}`")
            }
            ComposeError::ArityMismatch {
                component,
                expected,
                found,
            } => write!(
                f,
                "component `{component}` requires {expected} input(s) but the topology supplies {found}"
            ),
            ComposeError::InvalidLatency { component, latency } => {
                write!(f, "component `{component}` declares invalid latency {latency}")
            }
            ComposeError::MetadataTooWide { component, bits } => {
                write!(f, "component `{component}` declares {bits} metadata bits (max 64)")
            }
            ComposeError::LocalHistoryTooWide { component, bits } => {
                write!(
                    f,
                    "component `{component}` declares {bits} local-history bits (max 64)"
                )
            }
            ComposeError::Analysis { diagnostics } => {
                let first = diagnostics
                    .first()
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "design rejected".into());
                if diagnostics.len() > 1 {
                    write!(f, "{first} (+{} more)", diagnostics.len() - 1)
                } else {
                    write!(f, "{first}")
                }
            }
        }
    }
}

impl Error for ComposeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ComposeError::UnknownComponent {
            name: "FOO3".into(),
            span: None,
        };
        assert_eq!(e.to_string(), "unknown component name `FOO3`");
        let e = ComposeError::ArityMismatch {
            component: "TOURNEY3".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("requires 2"));
    }

    #[test]
    fn parse_errors_render_span() {
        let e = ComposeError::Parse {
            reason: "unexpected `]`".into(),
            span: Span::new(4, 5),
        };
        assert!(e.to_string().contains("4..5"));
        assert_eq!(e.span(), Some(Span::new(4, 5)));
    }

    #[test]
    fn unknown_component_carries_span() {
        let e = ComposeError::UnknownComponent {
            name: "FOO3".into(),
            span: Some(Span::new(7, 11)),
        };
        assert_eq!(e.span(), Some(Span::new(7, 11)));
        assert_eq!(e.to_string(), "unknown component name `FOO3`");
    }

    #[test]
    fn span_caret_line_underlines_range() {
        assert_eq!(Span::new(2, 5).caret_line(), "  ^^^");
        assert_eq!(Span::point(3).caret_line(), "   ^");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<ComposeError>();
    }
}
