//! Error types for topology parsing and pipeline composition.

use std::error::Error;
use std::fmt;

/// An error raised while parsing a topology expression or composing a
/// predictor pipeline from one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// The topology expression could not be parsed.
    Parse {
        /// Human-readable description of the syntax problem.
        reason: String,
    },
    /// A component name in the topology has no registered factory.
    UnknownComponent {
        /// The unresolved name, e.g. `"FOO3"`.
        name: String,
    },
    /// An arbitration component was given the wrong number of inputs.
    ArityMismatch {
        /// The component's label.
        component: String,
        /// Inputs the component requires.
        expected: usize,
        /// Inputs the topology supplies.
        found: usize,
    },
    /// A component declared an invalid latency (zero, or exceeding the
    /// supported pipeline depth).
    InvalidLatency {
        /// The component's label.
        component: String,
        /// The offending latency.
        latency: u8,
    },
    /// A component declared more metadata bits than the framework stores.
    MetadataTooWide {
        /// The component's label.
        component: String,
        /// Declared metadata width.
        bits: u32,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Parse { reason } => write!(f, "topology parse error: {reason}"),
            ComposeError::UnknownComponent { name } => {
                write!(f, "unknown component name `{name}`")
            }
            ComposeError::ArityMismatch {
                component,
                expected,
                found,
            } => write!(
                f,
                "component `{component}` requires {expected} input(s) but the topology supplies {found}"
            ),
            ComposeError::InvalidLatency { component, latency } => {
                write!(f, "component `{component}` declares invalid latency {latency}")
            }
            ComposeError::MetadataTooWide { component, bits } => {
                write!(f, "component `{component}` declares {bits} metadata bits (max 64)")
            }
        }
    }
}

impl Error for ComposeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ComposeError::UnknownComponent {
            name: "FOO3".into(),
        };
        assert_eq!(e.to_string(), "unknown component name `FOO3`");
        let e = ComposeError::ArityMismatch {
            component: "TOURNEY3".into(),
            expected: 2,
            found: 1,
        };
        assert!(e.to_string().contains("requires 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: Error + Send + Sync + 'static>() {}
        assert_err::<ComposeError>();
    }
}
