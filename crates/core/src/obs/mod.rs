//! Pipeline observability: per-component attribution and event tracing.
//!
//! The framework's aggregate counters (queries, mispredicts, commits) say
//! *that* a composed predictor mispredicted, never *which sub-component*
//! to blame — yet COBRA's whole thesis is that predictors are
//! compositions. This module closes that gap with two always-available
//! layers:
//!
//! * **Attribution counters** ([`StatsSink`]): per-component, per-event
//!   counters — queries, fires, provided-the-final-prediction,
//!   overridden-by-another-component, mispredict blame split by direction
//!   and target, repair and update traffic — plus management-structure
//!   gauges (history-file occupancy high-water mark, global-history
//!   snapshot repairs, local-history repairs). Blame is charged to the
//!   component whose value the packet's followed prediction actually
//!   carried, computed by a value-flow fold over the composed pipeline
//!   ([`PacketAttribution`]).
//! * **Event tracing** ([`trace`]): an opt-in structured per-event stream
//!   (JSONL or Chrome `trace_event`), zero-cost when off.
//! * **Interval telemetry** ([`interval`]): time-resolved per-component
//!   deltas, occupancy gauges, and phase signatures every `COBRA_INTERVAL`
//!   committed instructions, plus the `COBRA_PROFILE` plan-node
//!   self-profiler — both off by default and stdout-invisible when on.
//!
//! Attribution is *operational*: at the final pipeline stage, each
//! predicted field of each slot is traced back through the composition to
//! the deepest component whose own response carries the winning value.
//! Ties (two components proposing the same value) credit the component
//! closest to the base of the topology — the first to have established
//! the value. A field no component proposed (an arbiter synthesizing a
//! merge) is credited to the composing node itself.

pub mod interval;
pub mod trace;

use crate::types::{BranchKind, PredictionBundle, SlotPrediction, MAX_FETCH_WIDTH};
use cobra_sim::{SnapError, StateReader, StateWriter};
use std::collections::BTreeMap;

/// Sentinel provider index: no component provided the field.
pub const NO_PROVIDER: u8 = u8::MAX;

/// Components beyond this count do not get proposal masks (provider
/// attribution still works); real topologies have ≤ 8 nodes.
pub const MAX_TRACKED_COMPONENTS: usize = 16;

/// Label of the pseudo-component charged with mispredicts no component's
/// prediction caused (static not-taken fall-through, unpredicted slots).
pub const STATIC_LABEL: &str = "(static)";

/// Which predicted field of a slot steered the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionField {
    /// The slot's branch kind.
    Kind,
    /// The conditional direction.
    Taken,
    /// The redirect target.
    Target,
}

/// Per-packet provenance: which pipeline node provided each predicted
/// field of each slot in the final composed bundle, plus per-node
/// proposal masks for override accounting.
///
/// Provider indices are pipeline node indices in dataflow order
/// ([`NO_PROVIDER`] when the field was not predicted). Proposal masks
/// have bit `s` set when the node's *own* raw response carried the field
/// for slot `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketAttribution {
    /// Provider of each slot's `kind` field.
    pub kind_provider: [u8; MAX_FETCH_WIDTH],
    /// Provider of each slot's `taken` field.
    pub taken_provider: [u8; MAX_FETCH_WIDTH],
    /// Provider of each slot's `target` field.
    pub target_provider: [u8; MAX_FETCH_WIDTH],
    /// Per-node slot mask of own direction proposals.
    pub proposed_taken: [u8; MAX_TRACKED_COMPONENTS],
    /// Per-node slot mask of own target proposals.
    pub proposed_target: [u8; MAX_TRACKED_COMPONENTS],
}

impl PacketAttribution {
    /// No provenance: every field unattributed, no proposals.
    pub const EMPTY: Self = Self {
        kind_provider: [NO_PROVIDER; MAX_FETCH_WIDTH],
        taken_provider: [NO_PROVIDER; MAX_FETCH_WIDTH],
        target_provider: [NO_PROVIDER; MAX_FETCH_WIDTH],
        proposed_taken: [0; MAX_TRACKED_COMPONENTS],
        proposed_target: [0; MAX_TRACKED_COMPONENTS],
    };

    /// The provider of `field` at `slot`, or `None` for [`NO_PROVIDER`].
    pub fn provider(&self, slot: usize, field: DecisionField) -> Option<usize> {
        let p = match field {
            DecisionField::Kind => self.kind_provider[slot],
            DecisionField::Taken => self.taken_provider[slot],
            DecisionField::Target => self.target_provider[slot],
        };
        (p != NO_PROVIDER).then_some(p as usize)
    }

    /// The packet's steering decision: the slot and field that determined
    /// where fetch goes next, with its provider. `None` for an empty
    /// bundle (static fall-through).
    ///
    /// A predicted redirect is decided by its direction (conditional) or
    /// its target (unconditional); a no-redirect bundle is decided by the
    /// first slot carrying any prediction.
    pub fn decision(&self, bundle: &PredictionBundle) -> Option<(usize, DecisionField)> {
        if let Some((slot, _)) = bundle.redirect() {
            let field = if bundle.slot(slot).kind == Some(BranchKind::Conditional) {
                DecisionField::Taken
            } else {
                DecisionField::Target
            };
            return Some((slot, self.best_field(bundle.slot(slot), slot, field)));
        }
        (0..bundle.width() as usize).find_map(|s| {
            let sp = bundle.slot(s);
            if sp.is_empty() {
                return None;
            }
            let field = if sp.taken.is_some() {
                DecisionField::Taken
            } else if sp.kind.is_some() {
                DecisionField::Kind
            } else {
                DecisionField::Target
            };
            Some((s, self.best_field(sp, s, field)))
        })
    }

    /// Falls back from the preferred decision field to any attributed
    /// field the slot actually carries.
    fn best_field(
        &self,
        sp: &SlotPrediction,
        slot: usize,
        preferred: DecisionField,
    ) -> DecisionField {
        let carried = |f| match f {
            DecisionField::Kind => sp.kind.is_some(),
            DecisionField::Taken => sp.taken.is_some(),
            DecisionField::Target => sp.target().is_some(),
        };
        let order = [
            preferred,
            DecisionField::Taken,
            DecisionField::Target,
            DecisionField::Kind,
        ];
        order
            .into_iter()
            .find(|&f| carried(f) && self.provider(slot, f).is_some())
            .unwrap_or(preferred)
    }

    /// Serializes the attribution into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        for arr in [
            &self.kind_provider,
            &self.taken_provider,
            &self.target_provider,
        ] {
            for &v in arr {
                w.write_u64(u64::from(v));
            }
        }
        for arr in [&self.proposed_taken, &self.proposed_target] {
            for &v in arr {
                w.write_u64(u64::from(v));
            }
        }
    }

    /// Decodes an attribution written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(r: &mut StateReader<'_>) -> Result<Self, SnapError> {
        let mut a = PacketAttribution::EMPTY;
        for arr in [
            &mut a.kind_provider,
            &mut a.taken_provider,
            &mut a.target_provider,
        ] {
            for v in arr.iter_mut() {
                *v = r.read_u64_capped("attribution provider", 0xff)? as u8;
            }
        }
        for arr in [&mut a.proposed_taken, &mut a.proposed_target] {
            for v in arr.iter_mut() {
                *v = r.read_u64_capped("attribution proposal mask", 0xff)? as u8;
            }
        }
        Ok(a)
    }
}

impl Default for PacketAttribution {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Per-component event and outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentCounters {
    /// Predict queries this component received.
    pub queries: u64,
    /// `fire` events received (packets accepted into the backend).
    pub fires: u64,
    /// `mispredict` fast-update events received.
    pub mispredict_events: u64,
    /// `repair` events received (squash restores).
    pub repairs: u64,
    /// Commit-time `update` events received.
    pub updates: u64,
    /// Packets whose steering decision this component's value provided.
    pub provided_final: u64,
    /// Packets where this component proposed the decision field but
    /// another component's value won.
    pub overridden: u64,
    /// Direction mispredicts blamed on this component.
    pub direction_blame: u64,
    /// Target mispredicts blamed on this component.
    pub target_blame: u64,
}

impl ComponentCounters {
    /// Total mispredict blame (direction + target).
    pub fn blame(&self) -> u64 {
        self.direction_blame + self.target_blame
    }

    fn delta(&self, earlier: &ComponentCounters) -> ComponentCounters {
        ComponentCounters {
            queries: self.queries - earlier.queries,
            fires: self.fires - earlier.fires,
            mispredict_events: self.mispredict_events - earlier.mispredict_events,
            repairs: self.repairs - earlier.repairs,
            updates: self.updates - earlier.updates,
            provided_final: self.provided_final - earlier.provided_final,
            overridden: self.overridden - earlier.overridden,
            direction_blame: self.direction_blame - earlier.direction_blame,
            target_blame: self.target_blame - earlier.target_blame,
        }
    }
}

/// One component's row in an [`AttributionReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentAttribution {
    /// Component label (topology name), or [`STATIC_LABEL`] for the
    /// unattributed pseudo-component.
    pub label: String,
    /// The counters.
    pub counters: ComponentCounters,
}

/// One edge of the override-chain histogram: `winner`'s value steered a
/// packet for whose decision field `loser` had also proposed a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverrideEdge {
    /// The component whose value won.
    pub winner: String,
    /// The component whose proposal lost.
    pub loser: String,
    /// Packets on which this happened.
    pub count: u64,
}

/// The attribution summary folded into the end-of-run report.
///
/// `components` lists every pipeline node in dataflow order plus a final
/// [`STATIC_LABEL`] row absorbing blame for packets no component steered.
/// The invariant the property tests enforce: the blame columns sum to the
/// host core's `cond_mispredicts + target_mispredicts`, and
/// `provided_final` sums to `packets_with_prediction`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionReport {
    /// Per-component rows (dataflow order, then the static row).
    pub components: Vec<ComponentAttribution>,
    /// Queried packets whose final composed bundle carried any prediction.
    pub packets_with_prediction: u64,
    /// History-file occupancy high-water mark (entries).
    pub hf_high_water: u64,
    /// Global-history snapshot restores (revisions, mispredict rewinds,
    /// squashes, flushes).
    pub ghist_snapshot_repairs: u64,
    /// Local-history table repairs.
    pub lhist_repairs: u64,
    /// Override-chain histogram, nonzero edges only.
    pub overrides: Vec<OverrideEdge>,
}

impl AttributionReport {
    /// Total mispredict blame across all rows (including static).
    pub fn total_blame(&self) -> u64 {
        self.components.iter().map(|c| c.counters.blame()).sum()
    }

    /// Sum of `provided_final` across component rows.
    pub fn total_provided(&self) -> u64 {
        self.components
            .iter()
            .map(|c| c.counters.provided_final)
            .sum()
    }

    /// Field-wise difference `self − earlier` for warm-up exclusion.
    /// Monotonic counters subtract; the occupancy high-water mark keeps
    /// the later (whole-run) value.
    pub fn delta(&self, earlier: &AttributionReport) -> AttributionReport {
        let components = self
            .components
            .iter()
            .zip(&earlier.components)
            .map(|(now, was)| ComponentAttribution {
                label: now.label.clone(),
                counters: now.counters.delta(&was.counters),
            })
            .collect();
        let mut base: BTreeMap<(&str, &str), u64> = BTreeMap::new();
        for e in &earlier.overrides {
            base.insert((&e.winner, &e.loser), e.count);
        }
        let overrides = self
            .overrides
            .iter()
            .filter_map(|e| {
                let count = e.count
                    - base
                        .get(&(e.winner.as_str(), e.loser.as_str()))
                        .copied()
                        .unwrap_or(0);
                (count > 0).then(|| OverrideEdge {
                    winner: e.winner.clone(),
                    loser: e.loser.clone(),
                    count,
                })
            })
            .collect();
        AttributionReport {
            components,
            packets_with_prediction: self.packets_with_prediction - earlier.packets_with_prediction,
            hf_high_water: self.hf_high_water,
            ghist_snapshot_repairs: self.ghist_snapshot_repairs - earlier.ghist_snapshot_repairs,
            lhist_repairs: self.lhist_repairs - earlier.lhist_repairs,
            overrides,
        }
    }
}

/// Per-PC mispredict blame: total and per-row (component rows then
/// static), recorded only when PC attribution is enabled.
pub type PcBlame = BTreeMap<u64, Vec<u64>>;

/// The per-component statistics sink a [`BranchPredictorUnit`] owns.
///
/// [`BranchPredictorUnit`]: crate::composer::BranchPredictorUnit
#[derive(Debug, Clone)]
pub struct StatsSink {
    labels: Vec<String>,
    /// Per-row outcome counters. The broadcast fields (queries, fires,
    /// mispredict_events, repairs, updates) are kept zero here and held
    /// in the scalars below instead — they are identical for every
    /// component row by construction, so the hot path pays one increment
    /// per event, not one per component. [`Self::counters`] and
    /// [`Self::report`] merge them back in.
    counters: Vec<ComponentCounters>,
    /// Flattened `n × n` winner-major override matrix (component rows
    /// only).
    override_pairs: Vec<u64>,
    n: usize,
    queries: u64,
    fires: u64,
    mispredict_events: u64,
    repairs: u64,
    updates: u64,
    packets_with_prediction: u64,
    hf_high_water: u64,
    ghist_snapshot_repairs: u64,
    lhist_repairs: u64,
    /// `pc → blame counts` per row (`n + 1` rows, static last); `None`
    /// until [`enable_pc_blame`](Self::enable_pc_blame).
    pc_blame: Option<PcBlame>,
}

impl StatsSink {
    /// A sink for the pipeline whose node labels (dataflow order) are
    /// `labels`; a [`STATIC_LABEL`] row is appended.
    pub fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        let mut labels = labels;
        labels.push(STATIC_LABEL.to_string());
        Self {
            counters: vec![ComponentCounters::default(); n + 1],
            override_pairs: vec![0; n * n],
            n,
            labels,
            queries: 0,
            fires: 0,
            mispredict_events: 0,
            repairs: 0,
            updates: 0,
            packets_with_prediction: 0,
            hf_high_water: 0,
            ghist_snapshot_repairs: 0,
            lhist_repairs: 0,
            pc_blame: None,
        }
    }

    /// Component labels (dataflow order) plus the trailing static row.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of real component rows (excluding the static row).
    pub fn num_components(&self) -> usize {
        self.n
    }

    /// Starts recording per-PC mispredict blame (off by default: it
    /// allocates per distinct branch PC).
    pub fn enable_pc_blame(&mut self) {
        if self.pc_blame.is_none() {
            self.pc_blame = Some(BTreeMap::new());
        }
    }

    /// The per-PC blame map, if enabled.
    pub fn pc_blame(&self) -> Option<&PcBlame> {
        self.pc_blame.as_ref()
    }

    /// Account one predict query: every component was queried; the
    /// decision provider of `final_bundle` (per `attr`) gets
    /// `provided_final`, losers of the decision field get `overridden`.
    pub fn note_query(&mut self, attr: &PacketAttribution, final_bundle: &PredictionBundle) {
        self.queries += 1;
        let Some((slot, field)) = attr.decision(final_bundle) else {
            return; // empty bundle: static fall-through, nothing provided
        };
        self.packets_with_prediction += 1;
        let winner = attr.provider(slot, field).unwrap_or(self.n);
        self.counters[winner].provided_final += 1;
        if winner >= self.n {
            return;
        }
        let mask = match field {
            DecisionField::Taken => &attr.proposed_taken,
            DecisionField::Target | DecisionField::Kind => &attr.proposed_target,
        };
        for (i, m) in mask
            .iter()
            .enumerate()
            .take(self.n.min(MAX_TRACKED_COMPONENTS))
        {
            if i != winner && (m >> slot) & 1 == 1 {
                self.counters[i].overridden += 1;
                self.override_pairs[winner * self.n + i] += 1;
            }
        }
    }

    /// Account a `fire` broadcast (all components receive it).
    pub fn note_fire(&mut self) {
        self.fires += 1;
    }

    /// Account a `mispredict` broadcast.
    pub fn note_mispredict_event(&mut self) {
        self.mispredict_events += 1;
    }

    /// Account a `repair` broadcast.
    pub fn note_repair(&mut self) {
        self.repairs += 1;
    }

    /// Account a commit-time `update` broadcast.
    pub fn note_update(&mut self) {
        self.updates += 1;
    }

    /// Charge one misprediction to `provider` (a node index, or `None`
    /// for the static row), as a target or direction miss at `pc`.
    pub fn note_blame(&mut self, provider: Option<usize>, target_miss: bool, pc: u64) {
        let row = provider.filter(|&p| p < self.n).unwrap_or(self.n);
        if target_miss {
            self.counters[row].target_blame += 1;
        } else {
            self.counters[row].direction_blame += 1;
        }
        let n = self.n;
        if let Some(map) = self.pc_blame.as_mut() {
            let e = map.entry(pc).or_insert_with(|| vec![0; n + 1]);
            e[row] += 1;
        }
    }

    /// Record the history file's occupancy after an allocation.
    pub fn note_hf_occupancy(&mut self, entries: usize) {
        self.hf_high_water = self.hf_high_water.max(entries as u64);
    }

    /// Record one global-history snapshot restore.
    pub fn note_ghist_rewind(&mut self) {
        self.ghist_snapshot_repairs += 1;
    }

    /// Record one local-history repair.
    pub fn note_lhist_repair(&mut self) {
        self.lhist_repairs += 1;
    }

    /// One row's counters with the broadcast fields merged in (component
    /// rows then static; the static row receives no broadcasts).
    pub fn counters(&self, row: usize) -> ComponentCounters {
        let mut c = self.counters[row];
        if row < self.n {
            c.queries = self.queries;
            c.fires = self.fires;
            c.mispredict_events = self.mispredict_events;
            c.repairs = self.repairs;
            c.updates = self.updates;
        }
        c
    }

    /// Snapshot the sink into a report (nonzero override edges only,
    /// winner-major order — deterministic).
    pub fn report(&self) -> AttributionReport {
        let components = self
            .labels
            .iter()
            .enumerate()
            .map(|(row, label)| ComponentAttribution {
                label: label.clone(),
                counters: self.counters(row),
            })
            .collect();
        let mut overrides = Vec::new();
        for w in 0..self.n {
            for l in 0..self.n {
                let count = self.override_pairs[w * self.n + l];
                if count > 0 {
                    overrides.push(OverrideEdge {
                        winner: self.labels[w].clone(),
                        loser: self.labels[l].clone(),
                        count,
                    });
                }
            }
        }
        AttributionReport {
            components,
            packets_with_prediction: self.packets_with_prediction,
            hf_high_water: self.hf_high_water,
            ghist_snapshot_repairs: self.ghist_snapshot_repairs,
            lhist_repairs: self.lhist_repairs,
            overrides,
        }
    }

    /// Serializes the sink's counters for warm-state checkpoints.
    ///
    /// The per-PC blame map is observability-only and is *not*
    /// checkpointed; a restored run starts it empty.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.begin_section("stats");
        for c in &self.counters {
            w.write_u64(c.queries);
            w.write_u64(c.fires);
            w.write_u64(c.mispredict_events);
            w.write_u64(c.repairs);
            w.write_u64(c.updates);
            w.write_u64(c.provided_final);
            w.write_u64(c.overridden);
            w.write_u64(c.direction_blame);
            w.write_u64(c.target_blame);
        }
        for &p in &self.override_pairs {
            w.write_u64(p);
        }
        w.write_u64(self.queries);
        w.write_u64(self.fires);
        w.write_u64(self.mispredict_events);
        w.write_u64(self.repairs);
        w.write_u64(self.updates);
        w.write_u64(self.packets_with_prediction);
        w.write_u64(self.hf_high_water);
        w.write_u64(self.ghist_snapshot_repairs);
        w.write_u64(self.lhist_repairs);
        w.end_section();
    }

    /// Restores counters written by [`save_state`](Self::save_state) into
    /// a sink built for the same pipeline (same labels, same row count).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        r.open_section("stats")?;
        for c in &mut self.counters {
            c.queries = r.read_u64("row queries")?;
            c.fires = r.read_u64("row fires")?;
            c.mispredict_events = r.read_u64("row mispredict events")?;
            c.repairs = r.read_u64("row repairs")?;
            c.updates = r.read_u64("row updates")?;
            c.provided_final = r.read_u64("row provided final")?;
            c.overridden = r.read_u64("row overridden")?;
            c.direction_blame = r.read_u64("row direction blame")?;
            c.target_blame = r.read_u64("row target blame")?;
        }
        for p in &mut self.override_pairs {
            *p = r.read_u64("override pair")?;
        }
        self.queries = r.read_u64("queries")?;
        self.fires = r.read_u64("fires")?;
        self.mispredict_events = r.read_u64("mispredict events")?;
        self.repairs = r.read_u64("repairs")?;
        self.updates = r.read_u64("updates")?;
        self.packets_with_prediction = r.read_u64("packets with prediction")?;
        self.hf_high_water = r.read_u64("hf high water")?;
        self.ghist_snapshot_repairs = r.read_u64("ghist snapshot repairs")?;
        self.lhist_repairs = r.read_u64("lhist repairs")?;
        r.close_section()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr_with(taken0: u8) -> PacketAttribution {
        let mut a = PacketAttribution::EMPTY;
        a.taken_provider[0] = taken0;
        a
    }

    fn taken_bundle() -> PredictionBundle {
        let mut b = PredictionBundle::new(4);
        b.slot_mut(0).kind = Some(BranchKind::Conditional);
        b.slot_mut(0).taken = Some(true);
        b.slot_mut(0).set_target(Some(0x40));
        b
    }

    #[test]
    fn decision_prefers_direction_on_conditional_redirect() {
        let a = attr_with(1);
        let b = taken_bundle();
        assert_eq!(a.decision(&b), Some((0, DecisionField::Taken)));
    }

    #[test]
    fn decision_none_on_empty_bundle() {
        let a = PacketAttribution::EMPTY;
        assert_eq!(a.decision(&PredictionBundle::new(4)), None);
    }

    #[test]
    fn provided_final_sums_to_packets_with_prediction() {
        let mut s = StatsSink::new(vec!["A".into(), "B".into()]);
        let b = taken_bundle();
        s.note_query(&attr_with(0), &b);
        s.note_query(&attr_with(1), &b);
        s.note_query(&PacketAttribution::EMPTY, &PredictionBundle::new(4));
        let r = s.report();
        assert_eq!(r.packets_with_prediction, 2);
        assert_eq!(r.total_provided(), 2);
        assert_eq!(r.components[0].counters.queries, 3);
    }

    #[test]
    fn override_edges_count_losing_proposals() {
        let mut s = StatsSink::new(vec!["A".into(), "B".into()]);
        let mut a = attr_with(1); // B's direction won
        a.proposed_taken[0] = 0b1; // A also proposed slot 0
        a.proposed_taken[1] = 0b1;
        s.note_query(&a, &taken_bundle());
        let r = s.report();
        assert_eq!(r.components[0].counters.overridden, 1);
        assert_eq!(r.overrides.len(), 1);
        assert_eq!(r.overrides[0].winner, "B");
        assert_eq!(r.overrides[0].loser, "A");
    }

    #[test]
    fn blame_lands_on_provider_or_static() {
        let mut s = StatsSink::new(vec!["A".into()]);
        s.enable_pc_blame();
        s.note_blame(Some(0), false, 0x10);
        s.note_blame(None, true, 0x10);
        let r = s.report();
        assert_eq!(r.components[0].counters.direction_blame, 1);
        assert_eq!(r.components[1].label, STATIC_LABEL);
        assert_eq!(r.components[1].counters.target_blame, 1);
        assert_eq!(r.total_blame(), 2);
        assert_eq!(s.pc_blame().unwrap()[&0x10], vec![1, 1]);
    }

    #[test]
    fn report_delta_subtracts_counters_keeps_high_water() {
        let mut s = StatsSink::new(vec!["A".into()]);
        s.note_query(&attr_with(0), &taken_bundle());
        s.note_hf_occupancy(5);
        let early = s.report();
        s.note_query(&attr_with(0), &taken_bundle());
        s.note_hf_occupancy(9);
        s.note_ghist_rewind();
        let late = s.report();
        let d = late.delta(&early);
        assert_eq!(d.packets_with_prediction, 1);
        assert_eq!(d.components[0].counters.provided_final, 1);
        assert_eq!(d.hf_high_water, 9);
        assert_eq!(d.ghist_snapshot_repairs, 1);
    }
}
