//! Structured event tracing, opt-in via `COBRA_TRACE`.
//!
//! When the `COBRA_TRACE` environment variable is set to a path
//! template, every BPU-level event (predict / fire / mispredict /
//! repair / update) is appended as one line of JSON to that file. When
//! it is unset, the cost is a single relaxed atomic load per check —
//! the same once-resolved pattern as the runtime sanitizer
//! ([`crate::sanitize`]).
//!
//! Two formats, inferred from the template's extension:
//!
//! * `*.jsonl` (or anything else): one JSON object per line with
//!   `ev`, `cycle`, `pc`, `comp`, `slot`, `meta` fields (absent fields
//!   omitted) — the machine-readable stream `cobra-trace --selfcheck`
//!   validates.
//! * `*.chrome.json`: a Chrome `trace_event` array that opens directly
//!   in Perfetto or `chrome://tracing`, one instant event per BPU
//!   event, one thread per component.
//!
//! Because a process may simulate many cores (the parallel runner), the
//! template supports a `{}` placeholder replaced by a per-run context
//! string (design, workload, job id); without a placeholder the context
//! is inserted before the file extension. Sinks open their file lazily
//! on the first event, so retargeting a fresh BPU's tracer is free.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Distinguishes trace files from BPUs that were never given an
/// explicit context (unit tests constructing bare BPUs).
static ANON_SEQ: AtomicU64 = AtomicU64::new(0);

/// Whether event tracing is enabled for this process.
///
/// Resolved once from the environment (`COBRA_TRACE` set and non-empty)
/// on first call; afterwards a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve(),
    }
}

#[cold]
fn resolve() -> bool {
    let on = template().is_some();
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Forces tracing on or off, overriding the environment. Test hook —
/// `enabled()` caches its answer, so tests that flip `COBRA_TRACE`
/// after the first check must call this.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// The raw `COBRA_TRACE` path template, if set and non-empty.
pub fn template() -> Option<String> {
    std::env::var("COBRA_TRACE").ok().filter(|v| !v.is_empty())
}

/// Trace output encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line.
    Jsonl,
    /// Chrome `trace_event` JSON array (Perfetto / `chrome://tracing`).
    Chrome,
}

impl TraceFormat {
    /// Infers the format from a path template: `*.chrome.json` means
    /// [`TraceFormat::Chrome`], everything else [`TraceFormat::Jsonl`].
    pub fn infer(template: &str) -> Self {
        if template.ends_with(".chrome.json") {
            TraceFormat::Chrome
        } else {
            TraceFormat::Jsonl
        }
    }
}

/// Replaces `{}` in `template` with the sanitized `context`, or inserts
/// `-<context>` before the final extension when there is no placeholder
/// (before `.chrome.json` as a unit for Chrome templates).
pub fn resolve_path(template: &str, context: &str) -> PathBuf {
    let ctx = sanitize_context(context);
    if template.contains("{}") {
        return PathBuf::from(template.replacen("{}", &ctx, 1));
    }
    if ctx.is_empty() {
        return PathBuf::from(template);
    }
    let suffix_len = if template.ends_with(".chrome.json") {
        ".chrome.json".len()
    } else {
        Path::new(template)
            .extension()
            .map(|e| e.len() + 1)
            .unwrap_or(0)
    };
    let split = template.len() - suffix_len;
    PathBuf::from(format!(
        "{}-{}{}",
        &template[..split],
        ctx,
        &template[split..]
    ))
}

/// Restricts a context string to `[A-Za-z0-9._-]`, mapping everything
/// else to `_`, so it is always safe inside a file name.
pub fn sanitize_context(context: &str) -> String {
    context
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// The BPU-level event kinds a sink records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A fetch-packet predict query completed.
    Predict,
    /// The packet was accepted into the backend (`fire`).
    Fire,
    /// A resolved branch mispredicted.
    Mispredict,
    /// Speculative state was repaired after a squash.
    Repair,
    /// A retired packet's commit-time update.
    Update,
}

impl TraceEventKind {
    /// The event's wire name (the `ev` field).
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Predict => "predict",
            TraceEventKind::Fire => "fire",
            TraceEventKind::Mispredict => "mispredict",
            TraceEventKind::Repair => "repair",
            TraceEventKind::Update => "update",
        }
    }
}

/// One traced event. `comp` is a pipeline node index into the sink's
/// component label table ([`None`] for whole-BPU events).
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Core cycle at which it happened.
    pub cycle: u64,
    /// Fetch-packet or branch PC, if any.
    pub pc: Option<u64>,
    /// Component (pipeline node) index, if component-scoped.
    pub comp: Option<usize>,
    /// Slot within the fetch packet, if slot-scoped.
    pub slot: Option<usize>,
    /// The component's opaque metadata token, if any.
    pub meta: Option<u64>,
}

/// An append-only trace writer bound to one resolved path.
///
/// The file is created lazily on the first event (creating parent
/// directories as needed), so constructing and dropping an unused sink
/// touches the filesystem not at all. Chrome sinks write the closing
/// `]` on drop.
#[derive(Debug)]
pub struct TraceSink {
    path: PathBuf,
    format: TraceFormat,
    labels: Vec<String>,
    writer: Option<BufWriter<File>>,
    wrote_any: bool,
    /// True when this sink was auto-attached from `COBRA_TRACE` (the
    /// BPU builder may retarget it before any event is written).
    pub from_env: bool,
}

impl TraceSink {
    /// A sink writing to `path` in `format`, with `labels` naming the
    /// pipeline nodes (for Chrome thread names and error messages).
    pub fn new(path: PathBuf, format: TraceFormat, labels: Vec<String>) -> Self {
        Self {
            path,
            format,
            labels,
            writer: None,
            wrote_any: false,
            from_env: false,
        }
    }

    /// A sink resolved from the `COBRA_TRACE` template with `context`
    /// naming this run, or `None` when the template is unset.
    pub fn from_env(context: &str, labels: Vec<String>) -> Option<Self> {
        let template = template()?;
        let mut sink = Self::new(
            resolve_path(&template, context),
            TraceFormat::infer(&template),
            labels,
        );
        sink.from_env = true;
        Some(sink)
    }

    /// The path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-resolves the sink's path for a new context. Only meaningful
    /// before the first event; a sink that has already written keeps
    /// its file.
    pub fn retarget(&mut self, context: &str) {
        if self.writer.is_none() {
            if let Some(template) = template() {
                self.path = resolve_path(&template, context);
                self.format = TraceFormat::infer(&template);
            }
        }
    }

    /// A process-unique anonymous context for BPUs built without one.
    pub fn anon_context() -> String {
        format!("bpu{}", ANON_SEQ.fetch_add(1, Ordering::Relaxed))
    }

    fn open(&mut self) -> Option<&mut BufWriter<File>> {
        if self.writer.is_none() {
            if let Some(parent) = self.path.parent() {
                if !parent.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(parent);
                }
            }
            let file = match File::create(&self.path) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!(
                        "cobra: COBRA_TRACE: cannot open {}: {e}",
                        self.path.display()
                    );
                    // Disable this sink rather than erroring every event.
                    self.wrote_any = true;
                    return None;
                }
            };
            let mut w = BufWriter::new(file);
            if self.format == TraceFormat::Chrome {
                let _ = w.write_all(b"[\n");
                for (i, label) in self.labels.iter().enumerate() {
                    let _ = writeln!(
                        w,
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":{}}}}},",
                        i + 1,
                        json_str(label)
                    );
                }
            }
            self.writer = Some(w);
        }
        self.writer.as_mut()
    }

    /// Appends one event.
    pub fn record(&mut self, e: &TraceEvent) {
        let format = self.format;
        let first = !self.wrote_any;
        let Some(w) = self.open() else { return };
        match format {
            TraceFormat::Jsonl => {
                let mut line = format!("{{\"ev\":\"{}\",\"cycle\":{}", e.kind.name(), e.cycle);
                if let Some(pc) = e.pc {
                    line.push_str(&format!(",\"pc\":\"{pc:#x}\""));
                }
                if let Some(c) = e.comp {
                    line.push_str(&format!(",\"comp\":{c}"));
                }
                if let Some(s) = e.slot {
                    line.push_str(&format!(",\"slot\":{s}"));
                }
                if let Some(m) = e.meta {
                    line.push_str(&format!(",\"meta\":\"{m:#x}\""));
                }
                line.push('}');
                let _ = writeln!(w, "{line}");
            }
            TraceFormat::Chrome => {
                let _ = first; // metadata lines already end with commas
                let tid = e.comp.map(|c| c + 1).unwrap_or(0);
                let mut args = String::new();
                if let Some(pc) = e.pc {
                    args.push_str(&format!("\"pc\":\"{pc:#x}\""));
                }
                if let Some(s) = e.slot {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    args.push_str(&format!("\"slot\":{s}"));
                }
                if let Some(m) = e.meta {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    args.push_str(&format!("\"meta\":\"{m:#x}\""));
                }
                let _ = writeln!(
                    w,
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{tid},\"s\":\"t\",\"args\":{{{args}}}}},",
                    e.kind.name(),
                    e.cycle
                );
            }
        }
        self.wrote_any = true;
    }

    /// Flushes buffered events (and, for Chrome, leaves the array open —
    /// the trailing `]` is written on drop).
    pub fn flush(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            let _ = w.flush();
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        if let Some(w) = self.writer.as_mut() {
            if self.format == TraceFormat::Chrome {
                // Chrome's parser tolerates a trailing comma before `]`.
                let _ = w.write_all(b"]\n");
            }
            let _ = w.flush();
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_path_substitutes_placeholder() {
        assert_eq!(
            resolve_path("/tmp/t-{}.jsonl", "job00-gcc"),
            PathBuf::from("/tmp/t-job00-gcc.jsonl")
        );
    }

    #[test]
    fn resolve_path_inserts_before_extension() {
        assert_eq!(
            resolve_path("/tmp/trace.jsonl", "job01"),
            PathBuf::from("/tmp/trace-job01.jsonl")
        );
        assert_eq!(
            resolve_path("/tmp/trace.chrome.json", "job01"),
            PathBuf::from("/tmp/trace-job01.chrome.json")
        );
        assert_eq!(
            resolve_path("/tmp/trace", "job01"),
            PathBuf::from("/tmp/trace-job01")
        );
    }

    #[test]
    fn context_is_sanitized() {
        assert_eq!(sanitize_context("TAGE-L/gcc ref"), "TAGE-L_gcc_ref");
    }

    #[test]
    fn format_inference() {
        assert_eq!(TraceFormat::infer("x.jsonl"), TraceFormat::Jsonl);
        assert_eq!(TraceFormat::infer("x.chrome.json"), TraceFormat::Chrome);
        assert_eq!(TraceFormat::infer("x.json"), TraceFormat::Jsonl);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let dir = std::env::temp_dir().join("cobra-obs-trace-test");
        let path = dir.join("unit.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = TraceSink::new(path.clone(), TraceFormat::Jsonl, vec!["A".into()]);
            sink.record(&TraceEvent {
                kind: TraceEventKind::Predict,
                cycle: 7,
                pc: Some(0x40),
                comp: Some(0),
                slot: Some(2),
                meta: Some(0x9),
            });
            sink.record(&TraceEvent {
                kind: TraceEventKind::Fire,
                cycle: 9,
                pc: None,
                comp: None,
                slot: None,
                meta: None,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"ev\":\"predict\",\"cycle\":7,\"pc\":\"0x40\",\"comp\":0,\"slot\":2,\"meta\":\"0x9\"}"
        );
        assert_eq!(lines[1], "{\"ev\":\"fire\",\"cycle\":9}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unused_sink_creates_no_file() {
        let path = std::env::temp_dir().join("cobra-obs-trace-never.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let _sink = TraceSink::new(path.clone(), TraceFormat::Jsonl, vec![]);
        }
        assert!(!path.exists());
    }
}
