//! Interval telemetry: time-resolved per-component statistics, phase
//! signatures, and a hot-path self-profiler.
//!
//! Every end-of-run number COBRA reports is an aggregate; this module
//! adds the time axis. When `COBRA_INTERVAL=<n>` is set, the host core
//! closes a telemetry interval every `n` committed instructions and
//! records, for each interval:
//!
//! * the host counter delta ([`HostCounters`]) — cycles, commits,
//!   branches, mispredicts — from which MPKI/IPC per interval follow;
//! * the per-component attribution delta
//!   ([`AttributionReport::delta`]) — queries, fires, provided-final,
//!   overridden, blame split direction/target;
//! * occupancy gauges ([`IntervalGauges`]) — history-file occupancy,
//!   return-address-stack depth and high-water, and per-component SRAM
//!   touched-row utilization;
//! * a basic-block-vector-style *phase signature*: a
//!   [`SIG_BUCKETS`]-bucket histogram of hashed committed branch PCs,
//!   the working-set fingerprint SimPoint-style phase clustering needs.
//!
//! The records stream to a `.cbm` file (see `cobra_uarch::metrics`) and
//! reconcile bit-exactly: summed over all intervals, the host and
//! attribution deltas equal the end-of-run `PerfReport` /
//! [`AttributionReport`] — the same delta machinery `run_with_warmup`
//! uses, applied at a finer grain.
//!
//! Independently, `COBRA_PROFILE=1` arms a *self-profiler*
//! ([`NodeProfiler`]) on the compiled execution plan: every 16th
//! predict packet, per-node wall time is sampled around the query and
//! compose steps, and a summary table is printed to stderr when the
//! pipeline is dropped. Neither facility writes to stdout, and both
//! resolve to a single relaxed atomic load when off — the same
//! once-resolved gating as [`trace`](super::trace).

use super::AttributionReport;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Number of buckets in a phase-signature vector.
///
/// 64 buckets keeps a record small (≤ 320 bytes of varints) while still
/// separating SPECint-scale branch working sets; the multiplicative
/// hash spreads PCs uniformly, so collisions cost resolution, not
/// correctness.
pub const SIG_BUCKETS: usize = 64;

const IV_UNRESOLVED: u64 = u64::MAX;

/// Once-resolved `COBRA_INTERVAL` value; 0 = off.
static INTERVAL_N: AtomicU64 = AtomicU64::new(IV_UNRESOLVED);

const UNRESOLVED: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Once-resolved `COBRA_PROFILE` gate.
static PROFILE: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// The interval length in committed instructions, or `None` when
/// interval telemetry is off.
///
/// Resolved once from `COBRA_INTERVAL` (a positive integer; `_`
/// separators allowed) on first call; afterwards a single relaxed
/// load. An unparsable value warns once on stderr and disables the
/// engine rather than corrupting a long run.
#[inline]
pub fn interval_n() -> Option<u64> {
    match INTERVAL_N.load(Ordering::Relaxed) {
        IV_UNRESOLVED => resolve_interval(),
        0 => None,
        n => Some(n),
    }
}

#[cold]
fn resolve_interval() -> Option<u64> {
    let parsed = match std::env::var("COBRA_INTERVAL") {
        Ok(v) if !v.is_empty() => match v.replace('_', "").parse::<u64>() {
            Ok(n) if n > 0 && n < IV_UNRESOLVED => Some(n),
            _ => {
                eprintln!("cobra: COBRA_INTERVAL={v}: not a positive integer; telemetry off");
                None
            }
        },
        _ => None,
    };
    INTERVAL_N.store(parsed.unwrap_or(0), Ordering::Relaxed);
    parsed
}

/// Forces the interval length on or off, overriding the environment.
/// Test hook — [`interval_n`] caches its answer, so tests that flip
/// `COBRA_INTERVAL` after the first check must call this.
pub fn set_interval_n(n: Option<u64>) {
    INTERVAL_N.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Whether the plan-node self-profiler is armed for this process
/// (`COBRA_PROFILE` set, non-empty, and not `0`).
#[inline]
pub fn profile_enabled() -> bool {
    match PROFILE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => resolve_profile(),
    }
}

#[cold]
fn resolve_profile() -> bool {
    let on = std::env::var("COBRA_PROFILE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    PROFILE.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Forces the self-profiler gate, overriding the environment (test
/// hook, same caching caveat as [`set_interval_n`]).
pub fn set_profile_enabled(on: bool) {
    PROFILE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// The signature bucket for a branch PC.
///
/// Fibonacci multiplicative hash over the word-aligned PC: cheap (one
/// multiply, one shift), deterministic, and spreads the low-entropy
/// high bits of text-segment addresses across all [`SIG_BUCKETS`].
#[inline]
pub fn sig_bucket(pc: u64) -> usize {
    ((pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize
}

/// Cosine similarity of two signature vectors, in `[0, 1]` (1 when
/// either vector is all-zero only if both are — an empty interval is
/// similar to nothing).
pub fn cosine(a: &[u32], b: &[u32]) -> f64 {
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = (x as f64, y as f64);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return if na == nb { 1.0 } else { 0.0 };
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// A snapshot (or delta) of the host core's performance counters.
///
/// Mirrors `cobra_uarch::PerfCounters` field for field; duplicated here
/// because the dependency points the other way (`cobra-uarch` depends
/// on `cobra-core`). The host core converts at the interval boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Committed (retired) instructions.
    pub committed_insts: u64,
    /// Committed conditional branches.
    pub cond_branches: u64,
    /// Committed control-flow instructions of any kind.
    pub cfis: u64,
    /// Resolved conditional direction mispredicts.
    pub cond_mispredicts: u64,
    /// Resolved target mispredicts.
    pub target_mispredicts: u64,
    /// Pipeline redirects from override (late-stage) corrections.
    pub override_redirects: u64,
    /// History replays after squashes.
    pub history_replays: u64,
    /// Fetch bubbles injected.
    pub fetch_bubbles: u64,
    /// Cycles the front end stalled on instruction fetch.
    pub icache_stall_cycles: u64,
    /// Cycles commit stalled on a full reorder buffer.
    pub rob_stall_cycles: u64,
}

impl HostCounters {
    /// Field-wise difference `self − earlier`.
    pub fn delta(&self, earlier: &HostCounters) -> HostCounters {
        HostCounters {
            cycles: self.cycles - earlier.cycles,
            committed_insts: self.committed_insts - earlier.committed_insts,
            cond_branches: self.cond_branches - earlier.cond_branches,
            cfis: self.cfis - earlier.cfis,
            cond_mispredicts: self.cond_mispredicts - earlier.cond_mispredicts,
            target_mispredicts: self.target_mispredicts - earlier.target_mispredicts,
            override_redirects: self.override_redirects - earlier.override_redirects,
            history_replays: self.history_replays - earlier.history_replays,
            fetch_bubbles: self.fetch_bubbles - earlier.fetch_bubbles,
            icache_stall_cycles: self.icache_stall_cycles - earlier.icache_stall_cycles,
            rob_stall_cycles: self.rob_stall_cycles - earlier.rob_stall_cycles,
        }
    }

    /// Field-wise sum (for reconciling interval deltas against the
    /// end-of-run report).
    pub fn accumulate(&mut self, d: &HostCounters) {
        self.cycles += d.cycles;
        self.committed_insts += d.committed_insts;
        self.cond_branches += d.cond_branches;
        self.cfis += d.cfis;
        self.cond_mispredicts += d.cond_mispredicts;
        self.target_mispredicts += d.target_mispredicts;
        self.override_redirects += d.override_redirects;
        self.history_replays += d.history_replays;
        self.fetch_bubbles += d.fetch_bubbles;
        self.icache_stall_cycles += d.icache_stall_cycles;
        self.rob_stall_cycles += d.rob_stall_cycles;
    }

    /// Total mispredicted branches (direction + target).
    pub fn branch_misses(&self) -> u64 {
        self.cond_mispredicts + self.target_mispredicts
    }

    /// Mispredicts per kilo-instruction over this delta.
    pub fn mpki(&self) -> f64 {
        if self.committed_insts == 0 {
            return 0.0;
        }
        self.branch_misses() as f64 * 1000.0 / self.committed_insts as f64
    }

    /// Instructions per cycle over this delta.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed_insts as f64 / self.cycles as f64
    }

    /// The counters as a fixed-order array (the `.cbm` wire order).
    pub fn to_array(&self) -> [u64; 11] {
        [
            self.cycles,
            self.committed_insts,
            self.cond_branches,
            self.cfis,
            self.cond_mispredicts,
            self.target_mispredicts,
            self.override_redirects,
            self.history_replays,
            self.fetch_bubbles,
            self.icache_stall_cycles,
            self.rob_stall_cycles,
        ]
    }

    /// Rebuilds the counters from the `.cbm` wire order.
    pub fn from_array(a: [u64; 11]) -> HostCounters {
        HostCounters {
            cycles: a[0],
            committed_insts: a[1],
            cond_branches: a[2],
            cfis: a[3],
            cond_mispredicts: a[4],
            target_mispredicts: a[5],
            override_redirects: a[6],
            history_replays: a[7],
            fetch_bubbles: a[8],
            icache_stall_cycles: a[9],
            rob_stall_cycles: a[10],
        }
    }
}

/// Point-in-time occupancy gauges sampled at an interval boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalGauges {
    /// History-file occupancy (in-flight packets) at the boundary.
    pub hf_occupancy: u64,
    /// Return-address-stack live depth at the boundary.
    pub ras_depth: u64,
    /// Return-address-stack depth high-water mark so far this run.
    pub ras_high_water: u64,
    /// Per component row (dataflow order, no static row): SRAM rows
    /// written since construction/restore, and total SRAM rows. Both 0
    /// for flop-only components.
    pub sram_rows: Vec<(u64, u64)>,
}

/// One closed telemetry interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalRecord {
    /// Interval sequence number, 0-based from the measure boundary.
    pub seq: u64,
    /// Absolute committed-instruction count at the interval's start.
    pub start_inst: u64,
    /// Host counter delta over the interval.
    pub host: HostCounters,
    /// Per-component attribution delta over the interval.
    pub attr: AttributionReport,
    /// Occupancy gauges at the interval's closing boundary.
    pub gauges: IntervalGauges,
    /// Phase signature: hashed committed-branch-PC histogram.
    pub sig: Vec<u32>,
}

/// A completed run's interval series, ready for a `.cbm` writer.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSeries {
    /// Requested interval length (committed instructions); actual
    /// interval boundaries land on the first commit at or past each
    /// multiple, so per-record `host.committed_insts` may exceed this
    /// by up to the commit width.
    pub interval_n: u64,
    /// Component row labels (dataflow order, then the static row) —
    /// the label table every record's `attr.components` follows.
    pub labels: Vec<String>,
    /// The closed intervals in time order.
    pub records: Vec<IntervalRecord>,
}

/// The per-core interval engine.
///
/// Owned (boxed) by the host core and armed at the measure boundary of
/// `run_with_warmup`: `new` captures the baseline host/attribution
/// snapshots, the commit loop calls [`note_branch`](Self::note_branch)
/// per committed CFI and [`due`](Self::due) per step, and the core
/// closes intervals with fresh snapshots. [`finish`](Self::finish)
/// closes the final partial interval and yields the series.
#[derive(Debug)]
pub struct IntervalEngine {
    n: u64,
    next_boundary: u64,
    start_inst: u64,
    seq: u64,
    prev_host: HostCounters,
    prev_attr: AttributionReport,
    sig: Vec<u32>,
    records: Vec<IntervalRecord>,
}

impl IntervalEngine {
    /// An engine closing an interval every `n` committed instructions,
    /// starting from the given baseline snapshots (`host.committed_insts`
    /// is the absolute commit count at arming time).
    pub fn new(n: u64, host: HostCounters, attr: AttributionReport) -> Self {
        let n = n.max(1);
        Self {
            n,
            next_boundary: host.committed_insts + n,
            start_inst: host.committed_insts,
            seq: 0,
            prev_host: host,
            prev_attr: attr,
            sig: vec![0; SIG_BUCKETS],
            records: Vec::new(),
        }
    }

    /// The configured interval length.
    pub fn interval_n(&self) -> u64 {
        self.n
    }

    /// Accumulate one committed control-flow instruction into the
    /// current interval's phase signature.
    #[inline]
    pub fn note_branch(&mut self, pc: u64) {
        let b = sig_bucket(pc);
        self.sig[b] = self.sig[b].saturating_add(1);
    }

    /// Whether the current interval should close at this commit count.
    #[inline]
    pub fn due(&self, committed_insts: u64) -> bool {
        committed_insts >= self.next_boundary
    }

    /// Close the current interval with fresh end-of-interval snapshots
    /// and start the next one.
    pub fn close(&mut self, host: HostCounters, attr: AttributionReport, gauges: IntervalGauges) {
        let rec = IntervalRecord {
            seq: self.seq,
            start_inst: self.start_inst,
            host: host.delta(&self.prev_host),
            attr: attr.delta(&self.prev_attr),
            gauges,
            sig: std::mem::replace(&mut self.sig, vec![0; SIG_BUCKETS]),
        };
        self.seq += 1;
        self.start_inst = host.committed_insts;
        self.next_boundary = host.committed_insts + self.n;
        self.prev_host = host;
        self.prev_attr = attr;
        self.records.push(rec);
    }

    /// Close the final (possibly partial) interval and return the
    /// series. An empty final interval (no instructions committed since
    /// the last boundary) is dropped rather than recorded.
    pub fn finish(
        mut self,
        host: HostCounters,
        attr: AttributionReport,
        gauges: IntervalGauges,
    ) -> IntervalSeries {
        if host.committed_insts > self.start_inst {
            self.close(host, attr, gauges);
        }
        let labels = self
            .prev_attr
            .components
            .iter()
            .map(|c| c.label.clone())
            .collect();
        IntervalSeries {
            interval_n: self.n,
            labels,
            records: self.records,
        }
    }
}

/// Per-plan-node wall-time self-profiler (`COBRA_PROFILE`).
///
/// Sampling, not tracing: every [`SAMPLE_EVERY`](Self::SAMPLE_EVERY)-th
/// predict packet, the pipeline wraps each node's query and compose
/// step in an [`Instant`] pair. Wall-clock reads never feed back into
/// simulated state, so armed and unarmed runs produce byte-identical
/// results; the only output is a stderr summary table on drop.
#[derive(Debug)]
pub struct NodeProfiler {
    labels: Vec<String>,
    predict_ns: Vec<u64>,
    compose_ns: Vec<u64>,
    packets: u64,
    sampled: u64,
}

impl NodeProfiler {
    /// Sample one packet in this many (power of two).
    pub const SAMPLE_EVERY: u64 = 16;

    /// A profiler for a pipeline with the given node labels.
    pub fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        Self {
            labels,
            predict_ns: vec![0; n],
            compose_ns: vec![0; n],
            packets: 0,
            sampled: 0,
        }
    }

    /// Advance the packet counter; returns whether this packet should
    /// be timed.
    #[inline]
    pub fn tick(&mut self) -> bool {
        let sample = self.packets & (Self::SAMPLE_EVERY - 1) == 0;
        self.packets += 1;
        if sample {
            self.sampled += 1;
        }
        sample
    }

    /// Charge `since`'s elapsed wall time to node `i`'s query step.
    #[inline]
    pub fn record_predict(&mut self, i: usize, since: Instant) {
        self.predict_ns[i] += since.elapsed().as_nanos() as u64;
    }

    /// Charge `since`'s elapsed wall time to node `i`'s compose step.
    #[inline]
    pub fn record_compose(&mut self, i: usize, since: Instant) {
        self.compose_ns[i] += since.elapsed().as_nanos() as u64;
    }

    /// Packets seen (sampled or not).
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// The stderr summary table, or `None` when nothing was sampled.
    pub fn render(&self) -> Option<String> {
        if self.sampled == 0 {
            return None;
        }
        let total: u64 = self
            .predict_ns
            .iter()
            .chain(self.compose_ns.iter())
            .copied()
            .sum();
        let mut out = format!(
            "[profile] plan hot path: {} packets, {} sampled (1 in {})\n",
            self.packets,
            self.sampled,
            Self::SAMPLE_EVERY
        );
        out.push_str(&format!(
            "[profile] {:<14} {:>12} {:>12} {:>12} {:>7}\n",
            "node", "predict ns", "compose ns", "ns/packet", "share"
        ));
        for (i, label) in self.labels.iter().enumerate() {
            let node_total = self.predict_ns[i] + self.compose_ns[i];
            let share = if total > 0 {
                node_total as f64 * 100.0 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "[profile] {:<14} {:>12} {:>12} {:>12.1} {:>6.1}%\n",
                label,
                self.predict_ns[i],
                self.compose_ns[i],
                node_total as f64 / self.sampled as f64,
                share
            ));
        }
        Some(out)
    }
}

impl Drop for NodeProfiler {
    fn drop(&mut self) {
        if let Some(summary) = self.render() {
            eprint!("{summary}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{ComponentAttribution, ComponentCounters};

    fn attr(queries: u64, blame: u64) -> AttributionReport {
        AttributionReport {
            components: vec![ComponentAttribution {
                label: "A".into(),
                counters: ComponentCounters {
                    queries,
                    direction_blame: blame,
                    ..ComponentCounters::default()
                },
            }],
            packets_with_prediction: queries,
            ..AttributionReport::default()
        }
    }

    fn host(cycles: u64, insts: u64) -> HostCounters {
        HostCounters {
            cycles,
            committed_insts: insts,
            ..HostCounters::default()
        }
    }

    #[test]
    fn sig_bucket_in_range_and_deterministic() {
        for pc in [0u64, 0x40, 0x1000, u64::MAX, 0xdead_beef] {
            let b = sig_bucket(pc);
            assert!(b < SIG_BUCKETS);
            assert_eq!(b, sig_bucket(pc));
        }
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1, 0], &[1, 0]) - 1.0).abs() < 1e-12);
        assert!(cosine(&[1, 0], &[0, 1]).abs() < 1e-12);
        assert_eq!(cosine(&[0, 0], &[0, 0]), 1.0);
        assert_eq!(cosine(&[0, 0], &[1, 0]), 0.0);
    }

    #[test]
    fn host_counters_roundtrip_and_delta() {
        let a = HostCounters::from_array([11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(HostCounters::from_array(a.to_array()), a);
        let b = HostCounters::from_array([22, 20, 18, 16, 14, 12, 10, 8, 6, 4, 2]);
        let d = b.delta(&a);
        assert_eq!(d, a);
        let mut sum = a;
        sum.accumulate(&d);
        assert_eq!(sum, b);
        assert_eq!(d.branch_misses(), 7 + 6);
    }

    #[test]
    fn engine_intervals_reconcile_with_totals() {
        let mut e = IntervalEngine::new(100, host(50, 10), attr(5, 1));
        e.note_branch(0x40);
        assert!(!e.due(109));
        assert!(e.due(110));
        e.close(host(200, 110), attr(60, 4), IntervalGauges::default());
        e.note_branch(0x80);
        e.note_branch(0x80);
        let series = e.finish(host(260, 150), attr(80, 9), IntervalGauges::default());
        assert_eq!(series.records.len(), 2);
        assert_eq!(series.labels, vec!["A".to_string()]);
        // Interval 0: closed at 110 insts; interval 1: partial tail.
        assert_eq!(series.records[0].start_inst, 10);
        assert_eq!(series.records[0].host.committed_insts, 100);
        assert_eq!(series.records[1].start_inst, 110);
        assert_eq!(series.records[1].host.committed_insts, 40);
        // Sums reconcile with end-minus-baseline exactly.
        let mut h = HostCounters::default();
        let mut q = 0;
        let mut blame = 0;
        for r in &series.records {
            h.accumulate(&r.host);
            q += r.attr.components[0].counters.queries;
            blame += r.attr.components[0].counters.direction_blame;
        }
        assert_eq!(h, host(260, 150).delta(&host(50, 10)));
        assert_eq!(q, 80 - 5);
        assert_eq!(blame, 9 - 1);
        // Signatures: branch PCs land in the interval they committed in.
        assert_eq!(series.records[0].sig.iter().sum::<u32>(), 1);
        assert_eq!(series.records[1].sig.iter().sum::<u32>(), 2);
    }

    #[test]
    fn engine_drops_empty_tail() {
        let mut e = IntervalEngine::new(10, host(0, 0), attr(0, 0));
        e.close(host(20, 10), attr(3, 0), IntervalGauges::default());
        let series = e.finish(host(20, 10), attr(3, 0), IntervalGauges::default());
        assert_eq!(series.records.len(), 1);
    }

    #[test]
    fn profiler_samples_one_in_sixteen() {
        let mut p = NodeProfiler::new(vec!["A".into()]);
        let mut sampled = 0;
        for _ in 0..64 {
            if p.tick() {
                sampled += 1;
                p.record_predict(0, Instant::now());
            }
        }
        assert_eq!(sampled, 4);
        let table = p.render().expect("sampled packets render");
        assert!(table.contains("64 packets"));
        assert!(table.contains('A'));
    }

    #[test]
    fn profiler_renders_nothing_unsampled() {
        let p = NodeProfiler::new(vec!["A".into()]);
        assert!(p.render().is_none());
    }

    #[test]
    fn interval_env_hook_overrides() {
        set_interval_n(Some(123));
        assert_eq!(interval_n(), Some(123));
        set_interval_n(None);
        assert_eq!(interval_n(), None);
        set_profile_enabled(true);
        assert!(profile_enabled());
        set_profile_enabled(false);
        assert!(!profile_enabled());
    }
}
