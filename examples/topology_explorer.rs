//! Topology exploration: express several compositions of the same
//! sub-components in the paper's notation (Section IV-A) and compare them
//! end-to-end — the design-space workflow COBRA exists to enable.
//!
//! The three loop-predictor placements are the paper's own example:
//!
//! ```text
//! TOURNEY3 > [(LOOP2 > GBIM2), LBIM2]
//! TOURNEY3 > [GBIM2, (LOOP2 > LBIM2)]
//! LOOP3 > TOURNEY3 > [GBIM2, LBIM2]
//! ```
//!
//! ```sh
//! cargo run --release --example topology_explorer
//! ```

use cobra::core::components::{
    Btb, BtbConfig, Hbim, HbimConfig, IndexScheme, LoopConfig, LoopPredictor, Tourney,
    TourneyConfig,
};
use cobra::core::composer::{ComponentRegistry, Design};
use cobra::uarch::{Core, CoreConfig};
use cobra::workloads::kernels;

fn registry() -> ComponentRegistry {
    let mut r = ComponentRegistry::new();
    r.register("GBIM2", |w| {
        Box::new(Hbim::new(HbimConfig::gbim(16384, 12, w)))
    });
    r.register("LBIM2", |w| {
        Box::new(Hbim::new(HbimConfig {
            entries: 1024,
            counter_bits: 2,
            index: IndexScheme::LocalHistory { bits: 32 },
            latency: 2,
            width: w,
            superscalar: true,
        }))
    });
    r.register("BTB2", |w| Box::new(Btb::new(BtbConfig::large(w))));
    r.register("TOURNEY3", |w| {
        Box::new(Tourney::new(TourneyConfig::paper(w)))
    });
    let loop2 = |latency: u8| {
        move |w: u8| -> Box<dyn cobra::core::Component> {
            Box::new(LoopPredictor::new(LoopConfig {
                latency,
                ..LoopConfig::paper(w)
            }))
        }
    };
    r.register("LOOP2", loop2(2));
    r.register("LOOP3", loop2(3));
    r
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topologies = [
        "TOURNEY3 > [(LOOP2 > GBIM2 > BTB2), LBIM2]",
        "TOURNEY3 > [GBIM2 > BTB2, (LOOP2 > LBIM2)]",
        "LOOP3 > TOURNEY3 > [GBIM2 > BTB2, LBIM2]",
    ];
    println!("Three placements of a loop predictor in a tournament design");
    println!("(the paper's Section IV-A1 example), evaluated on a loop-heavy");
    println!("kernel:\n");
    for topo in topologies {
        let design = Design {
            name: format!("tourney[{topo}]"),
            topology: topo.to_string(),
            registry: registry(),
            ghist_bits: 32,
            lhist_entries: 256,
        };
        let mut core = Core::new(
            &design,
            CoreConfig::boom_4wide(),
            kernels::loop_stress().build(),
        )?;
        let r = core.run(150_000, "loop-stress");
        println!(
            "{:<46} IPC {:.3}  MPKI {:>5.2}  acc {:.2}%",
            topo,
            r.counters.ipc(),
            r.counters.mpki(),
            r.counters.branch_accuracy()
        );
    }
    println!("\nChanging the composition is a one-line topology edit: no");
    println!("component, composer, or management-structure changes needed.");
    Ok(())
}
