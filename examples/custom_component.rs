//! Implementing a custom sub-component against the COBRA interface and
//! composing it into a pipeline — the extension path the paper's interface
//! section is designed for.
//!
//! The component below is an *agree predictor* flavour of bias table: it
//! predicts whether the incoming prediction should be trusted or inverted,
//! exercising `predict_in`-dependent composition.
//!
//! ```sh
//! cargo run --release --example custom_component
//! ```

use cobra::core::components::{Btb, BtbConfig, Hbim, HbimConfig};
use cobra::core::composer::{ComponentRegistry, Design};
use cobra::core::validate::{check_component, CheckConfig};
use cobra::core::{
    Component, Meta, PredictQuery, PredictionBundle, Response, StorageReport, UpdateEvent,
};
use cobra::sim::{
    bits, PortKind, SaturatingCounter, SnapError, SramModel, StateReader, StateWriter,
};
use cobra::uarch::{Core, CoreConfig};
use cobra::workloads::spec17;

/// An agree/invert corrector: a table of 2-bit counters voting on whether
/// the prediction below it tends to be right for this (PC, history).
struct AgreePredictor {
    table: SramModel<u8>,
}

impl AgreePredictor {
    fn new(entries: u64) -> Self {
        Self {
            table: SramModel::new(
                entries,
                2,
                PortKind::DualPort,
                SaturatingCounter::weakly_taken(2).value(),
            ),
        }
    }

    fn index(&self, pc: u64, ghist: &cobra::sim::HistoryRegister) -> u64 {
        let n = bits::clog2(self.table.len());
        (bits::mix64(pc >> 1) ^ ghist.folded(10.min(ghist.width()), n)) & bits::mask(n)
    }
}

impl Component for AgreePredictor {
    fn kind(&self) -> &'static str {
        "agree"
    }
    fn latency(&self) -> u8 {
        3
    }
    fn meta_bits(&self) -> u32 {
        2
    }
    fn storage(&self) -> StorageReport {
        let mut r = StorageReport::new();
        r.add_sram("agree-table", self.table.spec());
        r
    }

    fn predict(&mut self, q: &PredictQuery<'_>) -> Response {
        let mut meta = 0;
        if let Some(h) = &q.hist {
            let idx = self.index(q.pc, h.ghist);
            self.table.begin_cycle(q.cycle);
            meta = *self.table.read(idx) as u64;
        }
        // Own bundle is empty: the decision is applied in `compose`.
        Response {
            pred: PredictionBundle::new(q.width),
            meta: Meta(meta),
        }
    }

    fn compose(
        &self,
        width: u8,
        own: Option<&Response>,
        inputs: &[PredictionBundle],
    ) -> PredictionBundle {
        let mut out = inputs
            .first()
            .copied()
            .unwrap_or_else(|| PredictionBundle::new(width));
        if let Some(r) = own {
            let mut agree = SaturatingCounter::new(2, 0);
            agree.set(r.meta.0 as u8);
            if !agree.is_taken() {
                // Low trust: invert the incoming direction predictions.
                for i in 0..width as usize {
                    if let Some(t) = out.slot(i).taken {
                        out.slot_mut(i).taken = Some(!t);
                    }
                }
            }
        }
        out
    }

    fn update(&mut self, ev: &UpdateEvent<'_>) {
        self.table.begin_cycle(0);
        let idx = self.index(ev.pc, ev.hist.ghist);
        let mut agree = SaturatingCounter::new(2, 0);
        agree.set(bits::field(ev.meta.0, 0, 2) as u8);
        for r in ev.conditional_branches() {
            // Reconstruct what the input predicted: the final output was
            // possibly inverted by us, so undo our own decision.
            let final_taken = ev.pred.slot(r.slot as usize).taken.unwrap_or(false);
            let input_taken = if agree.is_taken() {
                final_taken
            } else {
                !final_taken
            };
            agree.train(input_taken == r.taken);
        }
        self.table.write(idx, agree.value());
    }

    fn save_state(&self, w: &mut StateWriter) {
        self.table.save_state(w, |w, &c| w.write_u64(u64::from(c)));
    }

    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapError> {
        self.table
            .load_state(r, |r| Ok(r.read_u64_capped("agree counter", 0xff)? as u8))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Check interface conformance before composing (Section V-A:
    //    components are validated independently).
    let mut c = AgreePredictor::new(1024);
    let violations = check_component(&mut c, CheckConfig::default());
    assert!(
        violations.is_empty(),
        "interface violations: {violations:?}"
    );
    println!("AgreePredictor passes the interface conformance checks.");

    // 2. Compose it above a bimodal+BTB base and evaluate.
    let mut registry = ComponentRegistry::new();
    registry.register("AGREE3", |_w| Box::new(AgreePredictor::new(1024)));
    registry.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(16384, w))));
    registry.register("BTB2", |w| Box::new(Btb::new(BtbConfig::large(w))));
    let design = Design {
        name: "Agree".into(),
        topology: "AGREE3 > BTB2 > BIM2".into(),
        registry,
        ghist_bits: 16,
        lhist_entries: 0,
    };

    let baseline = {
        let mut registry = ComponentRegistry::new();
        registry.register("BIM2", |w| Box::new(Hbim::new(HbimConfig::bim(16384, w))));
        registry.register("BTB2", |w| Box::new(Btb::new(BtbConfig::large(w))));
        Design {
            name: "BIM-only".into(),
            topology: "BTB2 > BIM2".into(),
            registry,
            ghist_bits: 16,
            lhist_entries: 0,
        }
    };

    for d in [&baseline, &design] {
        let mut core = Core::new(d, CoreConfig::boom_4wide(), spec17::spec17("gcc").build())?;
        println!("{}", core.run(150_000, "gcc"));
    }
    println!("\nThe agree layer adds history sensitivity on top of an untagged");
    println!("bimodal base without touching the composer or the base components.");
    Ok(())
}
