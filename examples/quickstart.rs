//! Quickstart: compose a predictor from a topology string, drop it into
//! the BOOM-like core, and measure a workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cobra::core::designs;
use cobra::uarch::{Core, CoreConfig};
use cobra::workloads::{kernels, spec17};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick one of the paper's designs (Table I). A design is a topology
    //    string plus a registry of configured sub-components.
    let design = designs::tage_l();
    println!("design:   {}", design.name);
    println!("topology: {}", design.topology);

    // 2. Attach it to the Table II core and run a workload.
    let mut core = Core::new(
        &design,
        CoreConfig::boom_4wide(),
        kernels::dhrystone().build(),
    )?;
    let report = core.run(200_000, "dhrystone");
    println!("\n{report}");

    // 3. The predictor unit reports its own behaviour and physical shape.
    let bpu = core.bpu();
    println!("\npredictor stats: {:?}", bpu.stats());
    println!(
        "predictor storage: {:.1} KB (components) + {:.1} KB (management)",
        bpu.storage_by_component()
            .iter()
            .map(|(_, r)| r.kilobytes())
            .sum::<f64>(),
        bpu.meta_storage().kilobytes()
    );

    // 4. Sweep a couple of SPECint17 profiles across all three designs.
    println!();
    for w in ["leela", "x264"] {
        for d in designs::all() {
            let mut core = Core::new(&d, CoreConfig::boom_4wide(), spec17::spec17(w).build())?;
            println!("{}", core.run(100_000, w));
        }
    }
    Ok(())
}
