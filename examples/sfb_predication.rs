//! The Section VI-C backend co-design experiment as a runnable example:
//! short-forwards "hammock" branches decoded into predicated micro-ops
//! improve every predictor's accuracy on a CoreMark-like kernel.
//!
//! ```sh
//! cargo run --release --example sfb_predication
//! ```

use cobra::core::designs;
use cobra::uarch::{Core, CoreConfig};
use cobra::workloads::kernels;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Short-forwards-branch predication on the CoreMark kernel\n");
    for design in designs::all() {
        let mut base = Core::new(
            &design,
            CoreConfig::boom_4wide(),
            kernels::coremark(false).build(),
        )?;
        let rb = base.run(150_000, "coremark");
        let mut pred = Core::new(
            &design,
            CoreConfig::boom_4wide(),
            kernels::coremark(true).build(),
        )?;
        let rp = pred.run(150_000, "coremark+sfb");
        println!(
            "{:<12} IPC {:.3} → {:.3}   accuracy {:.2}% → {:.2}%",
            design.name,
            rb.counters.ipc(),
            rp.counters.ipc(),
            rb.counters.branch_accuracy(),
            rp.counters.branch_accuracy()
        );
    }
    println!("\nTwo effects, per the paper: predicated hammocks cannot");
    println!("mispredict, and predictor entries they used to occupy are freed");
    println!("for genuinely hard branches.");
    Ok(())
}
